"""Executor-reuse robustness: a worker death must not poison a session.

The kill is injected the same way ``tests/test_executor_robustness.py``
does it — a scenario override whose waveform evaluation SIGKILLs the
evaluating worker process — so the real failure path runs: a persistent
pool breaks mid-sweep, the session surfaces the failure for that
scenario, the dead worker's shared-memory segments are swept, and the
**next** scenario transparently runs on a fresh pool.
"""

import os
import signal
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.circuit import Pulse
from repro.core import SolverOptions
from repro.dist import MatexScheduler, MultiprocessExecutor, RetryPolicy
from repro.dist.shm import shm_available
from repro.linalg.lu import FACTORIZATION_CACHE
from repro.plan import Scenario, Session, SimulationPlan
from repro.rom import RomAnswer, RomConfig

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)
T_END = 1e-9


class SuicidalPulse(Pulse):
    """A pulse whose evaluation kills the evaluating process.

    Same timing parameters as the waveform it overrides, so scenario
    validation accepts it (the transition grid is preserved) — the task
    itself is the murder weapon.  Module-level so it pickles by
    reference into worker processes.
    """

    def values_array(self, times):
        os.kill(os.getpid(), signal.SIGKILL)

    def value(self, t):
        os.kill(os.getpid(), signal.SIGKILL)


def killer_scenario(system) -> Scenario:
    base = system.waveforms[0]
    bomb = SuicidalPulse(
        base.v1, base.v2, base.t_delay, base.t_rise,
        base.t_width, base.t_fall, t_period=base.t_period,
    )
    return Scenario("bomb", overrides={0: bomb})


@pytest.fixture
def compiled(mesh_system):
    return SimulationPlan(
        mesh_system, OPTS, t_end=T_END, batch="off"
    ).compile(prime=False)


def shm_entries(prefix: str) -> list[str]:
    base = Path("/dev/shm")
    if prefix is None or not base.is_dir():
        return []
    return [p.name for p in base.glob(f"{prefix}*")]


class TestSessionSurvivesWorkerDeath:
    def test_next_scenario_runs_on_a_fresh_pool(self, mesh_system, compiled):
        good = Scenario("good", scales={0: 1.1})
        with MultiprocessExecutor(mesh_system, OPTS, max_workers=2) as ex:
            first_pool = ex._pool
            assert first_pool is not None
            with Session(compiled, executor=ex) as session:
                with pytest.raises(BrokenProcessPool):
                    session.run(killer_scenario(mesh_system))
                # The broken pool was disposed...
                assert ex._pool is None
                # ...and the next scenario transparently gets a fresh one.
                res = session.run(good)
                assert ex._pool is not None
                assert ex._pool is not first_pool
            assert np.all(np.isfinite(res.result.states))
            cold = MatexScheduler(
                good.bind(mesh_system), OPTS
            ).run(T_END)
            assert (res.result.states.tobytes()
                    == cold.result.states.tobytes())

    def test_sweep_continues_after_mid_sweep_kill(
        self, mesh_system, compiled
    ):
        """Kill in scenario 2 of 3: 1 completed, 3 reruns cleanly."""
        scenarios = [
            Scenario("before", scales={0: 1.2}),
            killer_scenario(mesh_system),
            Scenario("after", scales={0: 0.8}),
        ]
        with MultiprocessExecutor(mesh_system, OPTS, max_workers=2) as ex:
            with Session(compiled, executor=ex) as session:
                before = session.run(scenarios[0])
                with pytest.raises(BrokenProcessPool):
                    session.run(scenarios[1])
                after = session.run(scenarios[2])
        for scenario, res in (("before", before), ("after", after)):
            assert np.all(np.isfinite(res.result.states)), scenario

    @pytest.mark.skipif(not shm_available(),
                        reason="POSIX shared memory needed")
    def test_dead_workers_segments_are_swept(self, mesh_system, compiled):
        """The shm prefix sweep reclaims whatever the massacre left."""
        with MultiprocessExecutor(
            mesh_system, OPTS, max_workers=2, transport="shm"
        ) as ex:
            prefix = ex._prefix
            assert prefix is not None
            with Session(compiled, executor=ex) as session:
                with pytest.raises(BrokenProcessPool):
                    session.run(killer_scenario(mesh_system))
                # Completed-but-unconsumed segments of the failed batch
                # (and anything the dead worker allocated) are gone.
                assert shm_entries(prefix) == []
                # The replacement pool gets its own namespace.
                session.run(Scenario("good", scales={0: 1.1}))
                assert ex._prefix is not None
                assert ex._prefix != prefix
            assert shm_entries(ex._prefix) == []

    def test_persistent_pool_amortises_worker_state(
        self, mesh_system, compiled
    ):
        """Scenario 2+ must not refactor anything inside the workers."""
        FACTORIZATION_CACHE.clear()
        scenarios = [
            Scenario(f"p{i}", scales={0: 1.0 + 0.1 * i}) for i in range(3)
        ]
        # One worker: every task lands on the same (warm) process, so
        # the zero-misses assertion is deterministic.
        with MultiprocessExecutor(mesh_system, OPTS, max_workers=1) as ex:
            with Session(compiled, executor=ex) as session:
                results = session.sweep(scenarios, stack=1)
        first, *rest = results
        # First scenario pays each worker process's construction...
        assert sum(s.n_factor_cache_misses for s in first.node_stats) >= 1
        # ...and the persistent pool serves every later scenario warm.
        for res in rest:
            assert sum(s.n_factor_cache_misses for s in res.node_stats) == 0

    def test_session_close_releases_owned_executor(self, compiled):
        session = Session(compiled)
        res = session.run()
        assert np.all(np.isfinite(res.result.states))
        assert session.executor._runner is not None or \
            session.executor._worker is not None
        session.close()
        assert session.executor._worker is None
        assert session.executor._runner is None


class RejectEverySecond:
    """Duck-typed reduced model: rejects every second consultation, so a
    sweep interleaves reduced answers with full-order fallbacks."""

    def __init__(self, model):
        self._model = model
        self._calls = 0
        self.dim = model.dim
        self.grid = model.grid
        self.n_points = model.n_points

    def input_matrix(self, scenario, bound):
        return self._model.input_matrix(scenario, bound)

    def answer(self, U):
        ans = self._model.answer(U)
        self._calls += 1
        if self._calls % 2 == 0:
            return RomAnswer(
                states=ans.states, bound_abs=ans.bound_abs,
                bound_rel=1.0, accepted=False, seconds=ans.seconds,
            )
        return ans


class TestRomFallbackSurvivesWorkerDeath:
    """ISSUE-8 satellite: a worker SIGKILLed during ``_sweep_rom``'s
    stacked full-order fallback must not corrupt the splice — ordering
    and bytes stay identical to the fault-free sweep."""

    def test_spliced_fallbacks_heal_bit_identically(
        self, mesh_system, tmp_path
    ):
        compiled = SimulationPlan(
            mesh_system, OPTS, t_end=T_END, batch="off"
        ).compile(prime=False, rom=RomConfig(tol=0.9))
        assert compiled.rom is not None, compiled.rom_error
        names = [f"s{i}" for i in range(5)]
        scenarios = [
            Scenario(name=nm, scales={0: 1.0 + 0.05 * i})
            for i, nm in enumerate(names)
        ]

        # Fault-free reference sweep (its own stateful reject pattern).
        with Session(
            replace(compiled, rom=RejectEverySecond(compiled.rom))
        ) as session:
            reference = session.sweep(scenarios)
            assert session.rom_fallbacks == 2

        # Same sweep, with the fallback chunk's first task killing its
        # pool worker once; the supervised executor retries the batch.
        faults.install("kill@0", str(tmp_path / "faults"))
        try:
            rigged = replace(compiled, rom=RejectEverySecond(compiled.rom))
            retry = RetryPolicy(max_retries=2, backoff=0.0, jitter=0.0)
            with MultiprocessExecutor(
                mesh_system, OPTS, max_workers=2, retry=retry
            ) as ex:
                with Session(rigged, executor=ex) as session:
                    faulted = session.sweep(scenarios)
                    assert session.rom_fallbacks == 2
        finally:
            faults.uninstall()

        assert ex.supervision.retries == 1
        assert faults.FaultPlan.parse(
            "kill@0", str(tmp_path / "faults")
        ).fired() == ["000.kill@0"]
        # The splice preserves input order and the fallback pattern...
        assert [r.scenario for r in faulted] == names
        assert [r.rom_fallback for r in faulted] == [
            r.rom_fallback for r in reference
        ] == [False, True, False, True, False]
        # ...and every trajectory, reduced or replayed, is bit-identical.
        for ref, got in zip(reference, faulted):
            assert (got.result.states.tobytes()
                    == ref.result.states.tobytes()), got.scenario
        # The retry rides on the fallback chunk's first result.
        assert sum(r.retries for r in faulted) == 1
