"""Reduced-order tier tests (repro.rom + its plan/session wiring).

Covers the ISSUE-7 contracts:

* the block rational-Krylov projector deflates rank-deficient and
  duplicated input blocks cleanly (property test over random low-rank
  ``B``),
* accepted reduced answers sit inside their certified absolute bound
  (checked against the full-order trajectory),
* rejected scenarios transparently fall back to the full-order path,
  bit-identical and order-preserving,
* a `ReducedModel` pickles with its compiled plan and answers
  bit-identically after the roundtrip,
* a build failure degrades the compile gracefully (``rom_error``).
"""

import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro.core.options import SolverOptions
from repro.linalg.lu import FACTORIZATION_CACHE
from repro.plan import PlanError, Scenario, Session, SimulationPlan
from repro.rom import (
    RomAnswer,
    RomBuildError,
    RomConfig,
    build_reduced_model,
    rational_krylov_basis,
)

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)
T_END = 1e-9
GAMMA = OPTS.gamma


def _compile(system, rom=None):
    return SimulationPlan(system, OPTS, t_end=T_END).compile(rom=rom)


class TestProjectorDeflation:
    def test_orthonormal_basis(self, mesh_system):
        V, info = rational_krylov_basis(
            mesh_system.C, mesh_system.G, mesh_system.B, GAMMA
        )
        assert V.shape == (mesh_system.dim, info.rank)
        np.testing.assert_allclose(
            V.T @ V, np.eye(V.shape[1]), atol=1e-12
        )

    def test_duplicated_columns_deflate(self, mesh_system):
        """Repeating every input column must not grow the basis."""
        Bd = np.asarray(mesh_system.B.todense())
        Bdup = np.concatenate([Bd, Bd, Bd], axis=1)
        V1, info1 = rational_krylov_basis(
            mesh_system.C, mesh_system.G, Bd, GAMMA
        )
        V3, info3 = rational_krylov_basis(
            mesh_system.C, mesh_system.G, Bdup, GAMMA
        )
        assert info3.rank == info1.rank
        assert info3.n_candidates == 3 * info1.n_candidates
        assert info3.n_deflated >= 2 * info1.rank
        np.testing.assert_allclose(
            V3.T @ V3, np.eye(V3.shape[1]), atol=1e-12
        )

    def test_random_low_rank_b_property(self, mesh_system, rng):
        """rank(basis) <= (moments + 1) * rank(B), at any width."""
        n = mesh_system.dim
        for r in (1, 2, 4):
            for _ in range(3):
                B = rng.normal(size=(n, r)) @ rng.normal(size=(r, 11))
                V, info = rational_krylov_basis(
                    mesh_system.C, mesh_system.G, B, GAMMA, moments=2
                )
                assert info.rank == V.shape[1]
                assert info.rank <= 3 * r
                assert info.n_candidates == 3 * 11
                np.testing.assert_allclose(
                    V.T @ V, np.eye(V.shape[1]), atol=1e-10
                )

    def test_zero_input_block_raises(self, mesh_system):
        with pytest.raises(RomBuildError, match="zero"):
            rational_krylov_basis(
                mesh_system.C, mesh_system.G,
                np.zeros((mesh_system.dim, 3)), GAMMA,
            )

    def test_q_max_caps_and_reports_truncation(self, mesh_system):
        V, info = rational_krylov_basis(
            mesh_system.C, mesh_system.G, mesh_system.B, GAMMA, q_max=2
        )
        assert V.shape[1] == 2 and info.rank == 2 and info.truncated


class TestRomConfig:
    @pytest.mark.parametrize("kwargs", [
        {"tol": 0.0}, {"tol": -1.0}, {"q_max": 0}, {"moments": 0},
        {"deflation_tol": 0.0}, {"deflation_tol": 1.0}, {"safety": 0.5},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RomConfig(**kwargs)


class TestCompileWiring:
    def test_compile_bakes_model_and_summary(self, mesh_system):
        compiled = _compile(mesh_system, rom=RomConfig())
        assert compiled.rom is not None and compiled.rom_error is None
        assert compiled.rom.dim <= RomConfig().q_max
        assert "reduced model:" in compiled.summary()

    def test_compile_without_rom_has_none(self, mesh_system):
        compiled = _compile(mesh_system)
        assert compiled.rom is None and compiled.rom_error is None
        assert "reduced model:" not in compiled.summary()

    def test_build_failure_degrades_to_full_order(
        self, mesh_system, monkeypatch
    ):
        import repro.rom as rom_pkg

        def boom(*args, **kwargs):
            raise RomBuildError("synthetic failure")

        monkeypatch.setattr(rom_pkg, "build_reduced_model", boom)
        compiled = _compile(mesh_system, rom=RomConfig())
        assert compiled.rom is None
        assert "synthetic failure" in compiled.rom_error
        assert "rom unavailable: synthetic failure" in compiled.summary()
        with Session(compiled) as session:
            with pytest.raises(PlanError, match="synthetic failure"):
                session.sweep([None], rom=True)
            result = session.run()  # the full-order path still works
            assert result.rom_dim is None

    def test_model_bytes_in_external_ledger(self, mesh_system):
        compiled = _compile(mesh_system, rom=RomConfig())
        assert (FACTORIZATION_CACHE.stats()["external_bytes"]
                >= compiled.rom.resident_bytes())

    def test_register_external_overwrites_and_unregisters(self):
        stats = FACTORIZATION_CACHE.stats
        base = stats()["external_bytes"]
        FACTORIZATION_CACHE.register_external("test:ledger", 1000)
        assert stats()["external_bytes"] == base + 1000
        FACTORIZATION_CACHE.register_external("test:ledger", 400)
        assert stats()["external_bytes"] == base + 400
        FACTORIZATION_CACHE.unregister_external("test:ledger")
        assert stats()["external_bytes"] == base


class TestSessionRouting:
    def test_accepted_answer_sits_inside_its_bound(self, mesh_system):
        compiled = _compile(mesh_system, rom=RomConfig(tol=0.9))
        model = compiled.rom
        scenarios = [
            None,
            Scenario(name="hot", scales={0: 1.4, 1: 0.8}),
            Scenario(name="cool", scales={0: 0.6}),
        ]
        with Session(compiled) as session:
            rom_results = session.sweep(scenarios)
            full_results = session.sweep(scenarios, rom=False)
        assert session.rom_accepted == 3 and session.rom_fallbacks == 0
        for sc, r, f in zip(scenarios, rom_results, full_results):
            assert r.rom_dim == model.dim and not r.rom_fallback
            assert r.result.method == f"rom[q={model.dim}]"
            ans = model.answer(model.input_matrix(sc, None))
            err = float(
                np.abs(r.result.states - f.result.states).max()
            )
            assert err <= ans.bound_abs
            assert r.rom_bound == ans.bound_rel <= 0.9

    def test_rejected_scenarios_fall_back_bit_identically(
        self, mesh_system
    ):
        compiled = _compile(mesh_system, rom=RomConfig(tol=1e-13))
        scenarios = [Scenario(name="hot", scales={0: 1.3}), None]
        with Session(compiled) as session:
            rom_results = session.sweep(scenarios)
            full_results = session.sweep(scenarios, rom=False)
        assert session.rom_fallbacks == 2 and session.rom_accepted == 0
        for r, f in zip(rom_results, full_results):
            assert r.rom_fallback and r.rom_dim == compiled.rom.dim
            assert r.rom_bound > 1e-13
            assert (r.result.states.tobytes()
                    == f.result.states.tobytes())

    def test_mixed_sweep_preserves_input_order(self, mesh_system):
        """Fallbacks are re-run stacked, then spliced back in order."""
        compiled = _compile(mesh_system, rom=RomConfig(tol=0.9))

        class RejectSome:
            """Duck-typed model: rejects every second consultation."""

            def __init__(self, model):
                self._model = model
                self._calls = 0
                self.dim = model.dim
                self.grid = model.grid
                self.n_points = model.n_points

            def input_matrix(self, scenario, bound):
                return self._model.input_matrix(scenario, bound)

            def answer(self, U):
                ans = self._model.answer(U)
                self._calls += 1
                if self._calls % 2 == 0:
                    return RomAnswer(
                        states=ans.states, bound_abs=ans.bound_abs,
                        bound_rel=1.0, accepted=False,
                        seconds=ans.seconds,
                    )
                return ans

        rigged = replace(compiled, rom=RejectSome(compiled.rom))
        names = [f"s{i}" for i in range(5)]
        scenarios = [
            Scenario(name=nm, scales={0: 1.0 + 0.05 * i})
            for i, nm in enumerate(names)
        ]
        with Session(rigged) as session:
            results = session.sweep(scenarios)
            assert session.rom_accepted == 3
            assert session.rom_fallbacks == 2
        assert [r.scenario for r in results] == names
        assert [r.rom_fallback for r in results] == [
            False, True, False, True, False,
        ]
        for r in results:
            assert r.rom_dim == compiled.rom.dim

    def test_run_defaults_to_full_order(self, mesh_system):
        compiled = _compile(mesh_system, rom=RomConfig(tol=0.9))
        with Session(compiled) as session:
            result = session.run()
        assert result.rom_dim is None and not result.rom_fallback

    def test_rom_true_without_model_raises(self, mesh_system):
        compiled = _compile(mesh_system)
        with Session(compiled) as session:
            with pytest.raises(PlanError, match="no reduced model"):
                session.sweep([None], rom=True)


class TestPickling:
    def test_model_roundtrip_answers_bit_identically(self, mesh_system):
        model = build_reduced_model(
            mesh_system, OPTS, T_END, RomConfig()
        )
        clone = pickle.loads(pickle.dumps(model))
        scenario = Scenario(name="hot", scales={0: 1.2})
        a = model.answer(model.input_matrix(scenario, None))
        b = clone.answer(clone.input_matrix(scenario, None))
        assert a.states.tobytes() == b.states.tobytes()
        assert a.bound_abs == b.bound_abs
        assert a.bound_rel == b.bound_rel

    def test_compiled_plan_carries_the_model_through_pickle(
        self, mesh_system
    ):
        compiled = _compile(mesh_system, rom=RomConfig(tol=0.9))
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.rom is not None
        assert clone.rom.dim == compiled.rom.dim
        with Session(compiled) as s1, Session(clone) as s2:
            r1 = s1.sweep([Scenario(name="hot", scales={0: 1.1})])
            r2 = s2.sweep([Scenario(name="hot", scales={0: 1.1})])
        assert (r1[0].result.states.tobytes()
                == r2[0].result.states.tobytes())


class TestModelInternals:
    def test_reduced_exponents_are_stable(self, mesh_system):
        model = build_reduced_model(
            mesh_system, OPTS, T_END, RomConfig()
        )
        assert np.all(model.lam.real <= 0.0)

    def test_dc_point_matches_full_order(self, mesh_system):
        model = build_reduced_model(
            mesh_system, OPTS, T_END, RomConfig()
        )
        ans = model.answer(model.input_matrix())
        lu = FACTORIZATION_CACHE.factor(mesh_system.G, label="G(test)")
        x_dc = lu.solve(mesh_system.bu(0.0))
        np.testing.assert_allclose(
            ans.states[0], x_dc, rtol=1e-9, atol=1e-14
        )

    def test_segment_tables_cover_grid_widths(self, mesh_system):
        model = build_reduced_model(
            mesh_system, OPTS, T_END, RomConfig()
        )
        widths = {float(w) for w in np.diff(model.grid)}
        assert widths == set(model.tables)
