"""Tests for the process-wide factorisation cache."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import MatexSolver, SolverOptions
from repro.linalg.krylov import RationalKrylov
from repro.linalg.lu import (
    FACTORIZATION_CACHE,
    FactorizationCache,
    FactorizationError,
    canonical_shift,
    matrix_fingerprint,
)


def spd(seed: int, n: int = 8) -> sp.csc_matrix:
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return sp.csc_matrix(a @ a.T + n * np.eye(n))


class TestFingerprint:
    def test_identical_content_matches(self):
        m = spd(1)
        assert matrix_fingerprint(m) == matrix_fingerprint(m.copy())
        # Format conversions preserve content, hence the fingerprint.
        assert matrix_fingerprint(m) == matrix_fingerprint(m.tocsr())

    def test_value_change_differs(self):
        m = spd(1)
        other = m.copy()
        other[0, 0] += 1e-9
        assert matrix_fingerprint(m) != matrix_fingerprint(other)

    def test_shape_differs(self):
        assert matrix_fingerprint(spd(1, 8)) != matrix_fingerprint(spd(1, 9))


class TestCacheBehaviour:
    def test_hit_shares_factors_with_fresh_counters(self):
        cache = FactorizationCache()
        m = spd(2)
        first = cache.factor(m, label="first")
        second = cache.factor(m.copy(), label="second")
        assert cache.hits == 1 and cache.misses == 1
        assert second is not first
        assert second._lu is first._lu  # the factors are shared
        assert second.factor_seconds == 0.0  # the hit cost nothing
        assert first.factor_seconds >= 0.0

        b = np.arange(8.0)
        np.testing.assert_array_equal(first.solve(b), second.solve(b))
        assert first.n_solves == 1 and second.n_solves == 1  # independent

    def test_key_extra_separates_entries(self):
        cache = FactorizationCache()
        m = spd(3)
        cache.factor(m, key_extra=("gamma", 1e-10))
        cache.factor(m, key_extra=("gamma", 1e-9))
        assert cache.misses == 2 and cache.hits == 0

    def test_lru_eviction(self):
        cache = FactorizationCache(max_entries=2)
        a, b, c = spd(4), spd(5), spd(6)
        cache.factor(a)
        cache.factor(b)
        cache.factor(a)          # refresh a
        cache.factor(c)          # evicts b (least recently used)
        assert len(cache) == 2
        cache.factor(a)
        assert cache.hits == 2   # a stayed
        cache.factor(b)
        assert cache.misses == 4  # b had to re-factor

    def test_clear(self):
        cache = FactorizationCache()
        cache.factor(spd(7))
        assert cache.resident_bytes > 0
        cache.clear()
        assert len(cache) == 0
        assert cache.resident_bytes == 0
        assert cache.counters() == (0, 0)

    def test_byte_budget_evicts(self):
        probe = FactorizationCache()
        per_entry = probe._entry_bytes(probe.factor(spd(10)))
        # Budget for ~2 entries: the third insert must evict the oldest.
        cache = FactorizationCache(max_entries=32,
                                   max_bytes=int(2.5 * per_entry))
        cache.factor(spd(11))
        cache.factor(spd(12))
        cache.factor(spd(13))
        assert len(cache) == 2
        assert cache.resident_bytes <= cache.max_bytes
        cache.factor(spd(13))
        assert cache.hits == 1      # newest survived
        cache.factor(spd(11))
        assert cache.misses == 4    # oldest was evicted

    def test_oversized_entry_passes_through_uncached(self):
        probe = FactorizationCache()
        per_entry = probe._entry_bytes(probe.factor(spd(14)))
        cache = FactorizationCache(max_bytes=max(1, per_entry // 2))
        lu = cache.factor(spd(15))
        b = np.arange(8.0)
        assert np.allclose(spd(15) @ lu.solve(b), b)  # still usable
        assert len(cache) == 0  # but never pinned

    def test_singular_matrix_not_cached(self):
        cache = FactorizationCache()
        singular = sp.csc_matrix(np.array([[1.0, 0.0], [0.0, 0.0]]))
        with pytest.raises(FactorizationError):
            cache.factor(singular, label="bad")
        assert len(cache) == 0

    def test_max_entries_validation(self):
        with pytest.raises(ValueError, match="max_entries"):
            FactorizationCache(max_entries=0)


class TestGammaCanonicalisation:
    def test_literals_round_trip_unchanged(self):
        for g in (1e-10, 5e-11, 0.5, 1.0, 2.2e-16, 1e3):
            assert canonical_shift(g) == g
        assert canonical_shift(0.0) == 0.0
        assert canonical_shift(np.inf) == np.inf

    def test_ulp_noise_collapses(self):
        g = 3e-10
        assert canonical_shift(np.nextafter(g, np.inf)) == g
        assert canonical_shift(np.nextafter(g, 0.0)) == g
        # The classic arithmetic-order pair.
        assert canonical_shift(0.1 + 0.2) == canonical_shift(0.3)
        assert (0.1 + 0.2) != 0.3  # the raw floats really do differ

    def test_equal_gamma_requests_factor_once(self, mesh_system):
        """γ derived through different arithmetic orders must share one
        cache entry — previously an exact-float key missed silently."""
        FACTORIZATION_CACHE.clear()
        g = 1e-10
        g_noisy = float(np.nextafter(g, np.inf))
        assert g_noisy != g
        op1 = RationalKrylov(mesh_system.C, mesh_system.G, gamma=g)
        op2 = RationalKrylov(mesh_system.C, mesh_system.G, gamma=g_noisy)
        assert op1.gamma == op2.gamma  # canonicalised before the pencil
        hits, misses = FACTORIZATION_CACHE.counters()
        assert (hits, misses) == (1, 1)
        assert op2.lu._lu is op1.lu._lu  # shared factors

    def test_distinct_gammas_still_separate(self, mesh_system):
        FACTORIZATION_CACHE.clear()
        RationalKrylov(mesh_system.C, mesh_system.G, gamma=1e-10)
        RationalKrylov(mesh_system.C, mesh_system.G, gamma=2e-10)
        hits, misses = FACTORIZATION_CACHE.counters()
        assert (hits, misses) == (0, 2)


class TestSolverIntegration:
    def test_second_solver_construction_is_all_hits(self, mesh_system):
        opts = SolverOptions(method="rational", gamma=1e-10)
        MatexSolver(mesh_system, opts)  # primes the cache
        second = MatexSolver(mesh_system, opts)
        # Rational solver owns two factorisations (C+γG and G) — both
        # served from the cache, hence zero factorisation wall time.
        assert second.construction_cache_hits == 2
        assert second.construction_cache_misses == 0
        assert second.factor_seconds == 0.0

    def test_cached_solver_trajectory_identical(self, mesh_system):
        opts = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)
        x0 = np.zeros(mesh_system.dim)
        cold = MatexSolver(mesh_system, opts).simulate(1e-9, x0=x0)
        warm = MatexSolver(mesh_system, opts).simulate(1e-9, x0=x0)
        np.testing.assert_array_equal(cold.states, warm.states)

    def test_inverted_still_shares_g_between_op_and_workspace(
        self, mesh_system
    ):
        solver = MatexSolver(
            mesh_system, SolverOptions(method="inverted", gamma=1e-10)
        )
        # One handle, not merely one underlying factorisation: ETD and
        # Krylov substitutions are counted against the same LU, as the
        # paper's single-LU I-MATEX requires.
        assert solver.workspace.lu_g is solver.op.lu

    def test_global_cache_counters_move(self, mesh_system):
        hits0, _ = FACTORIZATION_CACHE.counters()
        MatexSolver(mesh_system, SolverOptions(method="rational"))
        MatexSolver(mesh_system, SolverOptions(method="rational"))
        hits1, _ = FACTORIZATION_CACHE.counters()
        assert hits1 > hits0
