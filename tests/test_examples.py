"""Smoke tests: the fast example scripts must run clean end-to-end.

The heavier demos (distributed_pdn, rlc_package, periodic_workload,
adaptive_stepping) are exercised through the same code paths by the
integration tests and benchmarks; here we pin the quick ones as runnable
documentation.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "ibm_netlist_io.py",
    "stiff_circuit_comparison.py",
])
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "example produced no output"
