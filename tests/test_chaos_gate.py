"""ISSUE-8 chaos gate: the faulted sweep answers bit-identically.

With two injected worker kills and one injected shm-attach failure, an
8-scenario pg1t sweep under a supervised multiprocess executor must:

* complete with results **bit-identical** to the fault-free serial run
  (a retried batch is indistinguishable from a never-failed one),
* report the retries on :class:`~repro.dist.messages.DistributedResult`
  with zero degradations (the policy healed every fault),
* fire every armed directive exactly once,
* leak zero shared-memory segments.
"""

from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.core import SolverOptions
from repro.dist import MultiprocessExecutor, RetryPolicy
from repro.dist.shm import shm_available
from repro.pdn.suite import build_case
from repro.plan import Scenario, Session, SimulationPlan

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-7)
#: Shortened horizon: the gate is about failure paths, not Table 3.
T_END = 2e-9
N_SCENARIOS = 8
STACK = 2
#: Two successive kills of the first chunk's task 0, plus one parent-side
#: attach failure of a mid-chunk result (task ids restart per chunk, so
#: the shmfail targets a task every chunk delivers; fire-once makes the
#: first successful chunk pay it).
FAULT_SPEC = "kill@0,kill@0,shmfail@10"


@pytest.fixture(autouse=True)
def clean_fault_env():
    faults.uninstall()
    yield
    faults.uninstall()


def scenarios_seed7():
    rng = np.random.default_rng(7)
    return [
        Scenario(f"chaos{i}", scales={0: float(s)})
        for i, s in enumerate(rng.uniform(0.5, 1.5, size=N_SCENARIOS))
    ]


def shm_entries() -> set:
    base = Path("/dev/shm")
    return (
        {p.name for p in base.glob("repro*")} if base.is_dir() else set()
    )


@pytest.mark.skipif(not shm_available(),
                    reason="POSIX shared memory needed")
def test_chaos_gate_pg1t_sweep_is_bit_identical(tmp_path):
    system, _case = build_case("pg1t")
    compiled = SimulationPlan(
        system, OPTS, t_end=T_END, decomposition="bump",
        max_nodes=8, batch="auto",
    ).compile(prime=False)

    # Fault-free serial reference (the determinism contract makes the
    # serial batched run the oracle for the multiprocess one).
    with Session(compiled) as session:
        reference = session.sweep(scenarios_seed7(), stack=STACK)

    before = shm_entries()
    plan = faults.install(FAULT_SPEC, str(tmp_path / "faults"))
    retry = RetryPolicy(max_retries=4, backoff=0.01, jitter=0.0)
    with MultiprocessExecutor(
        system, OPTS, max_workers=2, batch_width="auto",
        transport="shm", retry=retry,
    ) as ex:
        with Session(compiled, executor=ex) as session:
            faulted = session.sweep(scenarios_seed7(), stack=STACK)

    # Every armed fault actually fired, exactly once each.
    assert plan.fired() == [
        "000.kill@0", "001.kill@0", "002.shmfail@10",
    ]

    # Bit-identical splice, in input order.
    assert [r.scenario for r in faulted] == [
        r.scenario for r in reference
    ]
    for ref, got in zip(reference, faulted):
        assert (got.result.states.tobytes()
                == ref.result.states.tobytes()), got.scenario

    # Three failures (two kills + one attach), three healed retries,
    # no degradation — all surfaced on the results.
    assert ex.supervision.pool_failures == 3
    assert ex.supervision.retries == 3
    assert ex.supervision.degradations == 0
    assert sum(r.retries for r in faulted) == 3
    assert sum(r.degraded_runs for r in faulted) == 0

    # Zero leaked shared-memory segments.
    assert shm_entries() - before == set()
