"""Unit tests for the dense ETD oracle."""

import numpy as np
import pytest
from scipy.integrate import solve_ivp

from repro.linalg import dense_a_matrix, etd_exact_step, exact_transient


class TestEtdExactStep:
    def test_matches_ode_integrator(self, rc_ladder_system, rng):
        s = rc_ladder_system
        a = dense_a_matrix(s.C, s.G)
        x = rng.normal(size=s.dim)
        b0 = rng.normal(size=s.dim)
        slope = rng.normal(size=s.dim)
        h = 1e-11
        ours = etd_exact_step(a, x, b0, slope, h)
        sol = solve_ivp(lambda t, y: a @ y + b0 + slope * t, (0, h), x,
                        rtol=1e-12, atol=1e-18)
        assert np.allclose(ours, sol.y[:, -1], rtol=1e-8, atol=1e-12)

    def test_zero_input_is_pure_exponential(self, rc_ladder_system, rng):
        import scipy.linalg as sla

        s = rc_ladder_system
        a = dense_a_matrix(s.C, s.G)
        x = rng.normal(size=s.dim)
        h = 1e-11
        z = np.zeros(s.dim)
        assert np.allclose(etd_exact_step(a, x, z, z, h),
                           sla.expm(h * a) @ x)

    def test_equilibrium_is_fixed_point(self, rc_ladder_system):
        """x = -A^{-1}b is stationary under constant input b."""
        s = rc_ladder_system
        a = dense_a_matrix(s.C, s.G)
        b = np.ones(s.dim)
        x_eq = -np.linalg.solve(a, b)
        z = np.zeros(s.dim)
        out = etd_exact_step(a, x_eq, b, z, 1e-10)
        assert np.allclose(out, x_eq, rtol=1e-9)


class TestExactTransient:
    def test_includes_gts_points(self, mesh_system):
        times, X = exact_transient(mesh_system, np.zeros(mesh_system.dim),
                                   1e-9)
        gts = mesh_system.global_transition_spots(1e-9)
        assert len(times) == len(gts)
        assert X.shape == (len(gts), mesh_system.dim)

    def test_extra_times_merged(self, mesh_system):
        times, _ = exact_transient(mesh_system, np.zeros(mesh_system.dim),
                                   1e-9, extra_times=[3.33e-10])
        assert np.any(np.isclose(times, 3.33e-10))

    def test_active_subset_zeroes_other_sources(self, mesh_system):
        t_end = 1e-9
        _, X_all = exact_transient(mesh_system, np.zeros(mesh_system.dim),
                                   t_end)
        times0, X0 = exact_transient(mesh_system, np.zeros(mesh_system.dim),
                                     t_end, active=[0])
        # Driving only source 0 is not the full response.
        assert not np.allclose(X0[-1], X_all[-1])

    def test_singular_c_rejected(self, small_pdn_system):
        with pytest.raises(np.linalg.LinAlgError):
            exact_transient(small_pdn_system,
                            np.zeros(small_pdn_system.dim), 1e-9)
