"""Fault-injection subsystem tests (repro.faults + its dist hooks).

Covers the ISSUE-8 contracts:

* the ``kind@task[:arg]`` grammar parses eagerly and rejects typos with
  :class:`~repro.faults.FaultError`,
* every directive fires exactly once per plan state — atomically across
  processes, with repeated directives firing on successive deliveries,
* ``kill`` is only armed inside disposable pool workers (a degraded
  in-process rerun never shoots the host),
* ``evict`` empties the process-wide factorisation cache,
* ``shmfail`` drives the *real* :class:`~repro.dist.shm.ShmAttachError`
  path (the segment is unlinked under the ref),
* an injected worker kill heals under a
  :class:`~repro.dist.supervision.RetryPolicy` bit-identically,
* the atexit/SIGTERM sweep reclaims the run's shm segments.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

from repro import faults
from repro.core import SolverOptions
from repro.dist import MultiprocessExecutor, RetryPolicy, SerialExecutor
from repro.dist.shm import shm_available
from repro.linalg.lu import FACTORIZATION_CACHE
from repro.plan import Scenario, Session, SimulationPlan

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)
T_END = 1e-9


@pytest.fixture(autouse=True)
def clean_fault_env():
    """Every test starts and ends with ambient fault injection off."""
    faults.uninstall()
    yield
    faults.uninstall()


class TestGrammar:
    def test_single_directive(self, tmp_path):
        plan = faults.FaultPlan.parse("kill@3", str(tmp_path))
        (spec,) = plan.specs
        assert (spec.index, spec.kind, spec.task_id) == (0, "kill", 3)
        assert spec.marker == "000.kill@3"

    def test_full_spec_parses_in_order(self, tmp_path):
        plan = faults.FaultPlan.parse(
            "kill@0, delay@2:0.5 ,shmfail@1,evict@4", str(tmp_path)
        )
        assert [str(s) for s in plan.specs] == [
            "kill@0", "delay@2:0.5", "shmfail@1", "evict@4",
        ]
        assert plan.specs[1].arg == 0.5

    def test_repeated_directives_get_distinct_markers(self, tmp_path):
        plan = faults.FaultPlan.parse("kill@0,kill@0", str(tmp_path))
        assert plan.specs[0].marker != plan.specs[1].marker

    @pytest.mark.parametrize("bad", [
        "",                    # empty spec
        "kill@0,,kill@1",      # empty directive
        "explode@0",           # unknown kind
        "kill",                # missing @task
        "kill@-1",             # negative task id
        "kill@x",              # non-integer task id
        "delay@0",             # delay without seconds
        "delay@0:0",           # delay must be positive
        "delay@0:nope",        # delay seconds must parse
        "kill@0:1",            # only delay takes an arg
    ])
    def test_bad_specs_raise_fault_error(self, bad, tmp_path):
        with pytest.raises(faults.FaultError):
            faults.FaultPlan.parse(bad, str(tmp_path))


class TestFireOnce:
    def test_shmfail_fires_exactly_once(self, tmp_path):
        plan = faults.FaultPlan.parse("shmfail@7", str(tmp_path))
        assert plan.should_fail_attach(7) is True
        assert plan.should_fail_attach(7) is False
        assert plan.fired() == ["000.shmfail@7"]

    def test_unarmed_task_never_fails(self, tmp_path):
        plan = faults.FaultPlan.parse("shmfail@7", str(tmp_path))
        assert plan.should_fail_attach(6) is False
        assert plan.fired() == []

    def test_repeated_directives_fire_on_successive_deliveries(
        self, tmp_path
    ):
        plan = faults.FaultPlan.parse("shmfail@1,shmfail@1", str(tmp_path))
        assert plan.should_fail_attach(1) is True
        assert plan.should_fail_attach(1) is True
        assert plan.should_fail_attach(1) is False
        assert plan.fired() == ["000.shmfail@1", "001.shmfail@1"]

    def test_state_is_shared_across_plan_objects(self, tmp_path):
        """Two parses of the same (spec, state) — as in two processes —
        contend for the same markers."""
        a = faults.FaultPlan.parse("shmfail@1", str(tmp_path))
        b = faults.FaultPlan.parse("shmfail@1", str(tmp_path))
        assert a.should_fail_attach(1) is True
        assert b.should_fail_attach(1) is False

    def test_reset_rearms(self, tmp_path):
        plan = faults.FaultPlan.parse("shmfail@1", str(tmp_path))
        assert plan.should_fail_attach(1) is True
        plan.reset()
        assert plan.fired() == []
        assert plan.should_fail_attach(1) is True

    def test_delay_sleeps_once(self, tmp_path):
        plan = faults.FaultPlan.parse("delay@0:0.05", str(tmp_path))
        t0 = time.monotonic()
        plan.on_task_start(0)
        first = time.monotonic() - t0
        t0 = time.monotonic()
        plan.on_task_start(0)
        second = time.monotonic() - t0
        assert first >= 0.05
        assert second < 0.05

    def test_kill_is_disarmed_outside_worker_processes(self, tmp_path):
        """The host survives — and the directive stays armed for a real
        worker (the marker must not be burned by the parent)."""
        assert not faults.in_worker_process()
        plan = faults.FaultPlan.parse("kill@0", str(tmp_path))
        plan.on_task_start(0)  # would SIGKILL us if armed
        assert plan.fired() == []

    def test_evict_clears_the_factor_cache(self, tmp_path):
        FACTORIZATION_CACHE.clear()
        FACTORIZATION_CACHE.factor(
            sp.eye(4, format="csc"), label="fault-test"
        )
        assert len(FACTORIZATION_CACHE) >= 1
        plan = faults.FaultPlan.parse("evict@2", str(tmp_path))
        plan.on_task_start(2)
        assert len(FACTORIZATION_CACHE) == 0
        assert plan.fired() == ["000.evict@2"]


class TestAmbientActivation:
    def test_inactive_without_env(self):
        assert faults.active_plan() is None
        # The module-level shims are no-ops.
        faults.on_task_start(0)
        assert faults.should_fail_attach(0) is False

    def test_install_exports_env_and_resets_state(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        (state / "000.kill@0").touch()  # stale marker from a prior run
        plan = faults.install("kill@0", str(state))
        assert os.environ[faults.ENV_SPEC] == "kill@0"
        assert os.environ[faults.ENV_STATE] == str(state)
        assert plan.fired() == []
        assert faults.active_plan() is plan

    def test_uninstall_deactivates(self, tmp_path):
        faults.install("kill@0", str(tmp_path))
        faults.uninstall()
        assert faults.active_plan() is None

    def test_install_rejects_bad_spec(self, tmp_path):
        with pytest.raises(faults.FaultError):
            faults.install("explode@0", str(tmp_path))


def _compile(system):
    return SimulationPlan(
        system, OPTS, t_end=T_END, batch="off"
    ).compile(prime=False)


class TestInjectedFaultsHeal:
    """End-to-end: injected faults + RetryPolicy = bit-identical results."""

    def test_worker_kill_heals_bit_identically(self, mesh_system, tmp_path):
        compiled = _compile(mesh_system)
        scenario = Scenario("hot", scales={0: 1.3})
        with Session(compiled) as session:
            reference = session.run(scenario)

        faults.install("kill@0", str(tmp_path / "faults"))
        retry = RetryPolicy(max_retries=2, backoff=0.0, jitter=0.0)
        with MultiprocessExecutor(
            mesh_system, OPTS, max_workers=2, retry=retry
        ) as ex:
            with Session(compiled, executor=ex) as session:
                healed = session.run(scenario)
        assert ex.supervision.retries == 1
        assert ex.supervision.pool_failures == 1
        assert healed.retries == 1
        assert (healed.result.states.tobytes()
                == reference.result.states.tobytes())
        assert faults.active_plan().fired() == ["000.kill@0"]

    @pytest.mark.skipif(not shm_available(),
                        reason="POSIX shared memory needed")
    def test_shm_attach_failure_heals_bit_identically(
        self, mesh_system, tmp_path
    ):
        compiled = _compile(mesh_system)
        scenario = Scenario("hot", scales={0: 1.3})
        with Session(compiled) as session:
            reference = session.run(scenario)

        faults.install("shmfail@0", str(tmp_path / "faults"))
        retry = RetryPolicy(max_retries=2, backoff=0.0, jitter=0.0)
        with MultiprocessExecutor(
            mesh_system, OPTS, max_workers=2, transport="shm", retry=retry
        ) as ex:
            with Session(compiled, executor=ex) as session:
                healed = session.run(scenario)
            # The failed batch's namespace was swept with the pool.
            leftovers = list(Path("/dev/shm").glob("repro*"))
        assert ex.supervision.retries == 1
        assert (healed.result.states.tobytes()
                == reference.result.states.tobytes())
        assert faults.active_plan().fired() == ["000.shmfail@0"]
        assert leftovers == []

    def test_kill_without_retry_policy_still_raises(
        self, mesh_system, tmp_path
    ):
        """retry=None keeps the historical raise-through contract."""
        from concurrent.futures.process import BrokenProcessPool

        compiled = _compile(mesh_system)
        faults.install("kill@0", str(tmp_path / "faults"))
        with MultiprocessExecutor(mesh_system, OPTS, max_workers=2) as ex:
            with Session(compiled, executor=ex) as session:
                with pytest.raises(BrokenProcessPool):
                    session.run(Scenario("hot", scales={0: 1.3}))
                # The fault fired once; the rerun heals by exhaustion.
                res = session.run(Scenario("hot", scales={0: 1.3}))
        assert np.all(np.isfinite(res.result.states))

    def test_serial_executor_ignores_kill_faults(
        self, mesh_system, tmp_path
    ):
        """In-process execution is never shot (kill disarms in the host)."""
        compiled = _compile(mesh_system)
        faults.install("kill@0", str(tmp_path / "faults"))
        with SerialExecutor(mesh_system, OPTS) as ex:
            with Session(compiled, executor=ex) as session:
                res = session.run()
        assert np.all(np.isfinite(res.result.states))
        assert faults.active_plan().fired() == []


@pytest.mark.skipif(not shm_available(),
                    reason="POSIX shared memory needed")
class TestExitSweep:
    def test_sweep_run_segments_reclaims_registered_prefixes(self):
        from multiprocessing import shared_memory

        from repro.dist.shm import new_segment_prefix, sweep_run_segments

        prefix = new_segment_prefix()
        seg = shared_memory.SharedMemory(
            name=f"{prefix}t0", create=True, size=64
        )
        seg.close()
        assert list(Path("/dev/shm").glob(f"{prefix}*"))
        removed = sweep_run_segments()
        assert removed >= 1
        assert list(Path("/dev/shm").glob(f"{prefix}*")) == []

    def test_sigterm_sweeps_segments_before_dying(self, tmp_path):
        """A SIGTERMed process reclaims its segments and exits 128+15."""
        script = textwrap.dedent("""
            import os, signal
            from multiprocessing import shared_memory
            from repro.dist.shm import install_signal_sweep, new_segment_prefix

            install_signal_sweep()
            prefix = new_segment_prefix()
            seg = shared_memory.SharedMemory(
                name=f"{prefix}t0", create=True, size=64
            )
            seg.close()
            print(prefix, flush=True)
            os.kill(os.getpid(), signal.SIGTERM)
            raise SystemExit(99)  # unreachable: the handler exits 143
        """)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=60,
        )
        prefix = proc.stdout.strip()
        assert prefix.startswith("repro")
        assert proc.returncode == 128 + signal.SIGTERM
        assert list(Path("/dev/shm").glob(f"{prefix}*")) == []
