"""Violating fixture: a signal handler taking a lock and logging."""

import logging
import signal
import threading

_LOCK = threading.Lock()


def _handler(signum, frame):
    _LOCK.acquire()  # expect: RPL012
    logging.error("interrupted by %d", signum)  # expect: RPL012
    raise SystemExit(128 + signum)


def install():
    signal.signal(signal.SIGTERM, _handler)
