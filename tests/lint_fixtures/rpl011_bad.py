"""Violating fixture: pool initializer capturing live parent state."""

import multiprocessing as mp
import threading

_LOCK = threading.Lock()


def _init(lock, system):
    lock.acquire()


def start(system):
    ctx = mp.get_context("fork")
    return ctx.Pool(
        2,
        initializer=_init,
        initargs=(_LOCK, system),  # expect: RPL011
    )
