"""Clean fixture: local generator objects, no global state."""

import random

import numpy as np


def generators(seed: int):
    return np.random.default_rng(seed), random.Random(seed)
