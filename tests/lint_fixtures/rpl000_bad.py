"""Violating fixture: the file does not parse."""
def broken(:  # expect: RPL000
    pass
