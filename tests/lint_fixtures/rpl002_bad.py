"""Violating fixture: unseeded RNG and hidden-global samplers."""

import numpy as np


def draw(n: int):
    rng = np.random.default_rng()  # expect: RPL002
    noise = np.random.uniform(size=n)  # expect: RPL002
    return rng.random(n) + noise
