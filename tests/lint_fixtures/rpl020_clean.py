"""Clean pickle fixture: plain-data fields only."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class GoodHandle:
    name: str
    weight: float = 1.0
    tags: tuple = ()
