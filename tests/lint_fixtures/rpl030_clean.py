"""Clean fixture: the loop only awaits; job bodies run in a thread."""

import asyncio


async def worker(executor, job):
    await asyncio.sleep(0.1)
    return await asyncio.to_thread(executor.run, job)


async def read(reader, n):
    return await reader.read(n)
