"""Clean fixture: set members are sorted before any float reduction."""


def total(values) -> float:
    acc = 0.0
    group = set(values)
    for v in sorted(group):
        acc += v
    return acc


def reduce_literal() -> float:
    return sum(sorted({1.0, 2.0, 3.0}))
