"""Clean fixture: every draw comes from an explicitly seeded generator."""

import numpy as np


def draw(n: int, seed: int):
    rng = np.random.default_rng(seed)
    return rng.random(n) + rng.uniform(size=n)
