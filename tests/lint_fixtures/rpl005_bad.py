"""Violating fixture: exact float equality in library logic."""


def is_unit(x: float) -> bool:
    return x == 1.0  # expect: RPL005


def changed(a: float, b: float) -> bool:
    return float(a) != float(b)  # expect: RPL005
