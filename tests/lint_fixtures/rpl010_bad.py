"""Violating fixture: allocates a /dev/shm prefix, never sweeps it."""

from repro.dist.shm import new_segment_prefix


def allocate(run_id: str) -> str:
    return new_segment_prefix(run_id)  # expect: RPL010
