"""Clean pickle fixture: the probe instance round-trips losslessly."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class GoodPayload:
    name: str
    scale: float = 2.0
    offsets: tuple = (1, 2, 3)
