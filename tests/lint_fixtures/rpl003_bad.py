"""Violating fixture: seeding the process-wide global RNGs."""

import random

import numpy as np


def pin(seed: int) -> None:
    np.random.seed(seed)  # expect: RPL003
    random.seed(seed)  # expect: RPL003
