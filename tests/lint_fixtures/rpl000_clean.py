"""Clean fixture: a trivially parseable module."""


def fine() -> int:
    return 1
