"""Clean fixture: one well-formed suppression that is actually used."""

import numpy as np


def pin(seed: int) -> None:
    np.random.seed(seed)  # repro: allow[RPL003] fixture: a used, well-formed suppression
