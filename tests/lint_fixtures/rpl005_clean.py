"""Clean fixture: tolerance-based comparison, plus one *documented*
exact sentinel carrying a suppression with a written justification."""


def is_unit(x: float, tol: float = 1e-12) -> bool:
    return abs(x - 1.0) < tol


def breakdown(beta: float) -> bool:
    return beta == 0.0  # repro: allow[RPL005] exact Krylov-breakdown sentinel (fixture)
