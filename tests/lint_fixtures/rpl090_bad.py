"""Violating fixture: malformed suppression attempts.

A standalone ``# expect:`` marker targets the next line, mirroring the
suppression syntax — the missing-reason case below cannot carry a
trailing marker because the marker text would *become* the reason.
"""

x = 1  # repro: allow RPL005 forgot the brackets  # expect: RPL090
y = 2  # repro: allow[] empty code list  # expect: RPL090
# expect: RPL090
z = 3  # repro: allow[RPL005]
w = 4  # repro: allow[not a code] some reason  # expect: RPL090
