"""Violating fixture: suppressions naming unknown/non-suppressible codes."""

x = 1  # repro: allow[RPL999] no such rule is registered  # expect: RPL091
y = 2  # repro: allow[RPL000] engine meta codes are not suppressible  # expect: RPL091
