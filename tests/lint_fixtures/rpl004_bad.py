"""Violating fixture: float accumulation over unordered set iteration."""


def total(values) -> float:
    acc = 0.0
    group = set(values)
    for v in group:  # expect: RPL004
        acc += v
    return acc


def reduce_literal() -> float:
    return sum({1.0, 2.0, 3.0})  # expect: RPL004
