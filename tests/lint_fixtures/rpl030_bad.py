"""Violating fixture: blocking calls directly inside coroutines."""

import subprocess
import time


async def worker(executor, job):
    time.sleep(0.1)  # expect: RPL030
    return executor.run(job)  # expect: RPL030


async def shell(cmd):
    return subprocess.run(cmd, check=True)  # expect: RPL030


async def read(sock, n):
    return sock.recv(n)  # expect: RPL030
