"""Violating pickle fixture: the declared types look harmless (so
RPL020 passes) but the default value is a lambda — the probe instance
fails the pickle round-trip (RPL021)."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class BadPayload:
    name: str
    transform: object = dataclasses.field(
        default_factory=lambda: (lambda x: x)
    )
