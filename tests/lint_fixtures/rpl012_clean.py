"""Clean fixture: the handler only sweeps files, sets a flag, re-raises."""

import signal

from repro.dist.shm import sweep_run_segments

_INTERRUPTED = []


def _handler(signum, frame):
    sweep_run_segments()
    _INTERRUPTED.append(signum)
    raise SystemExit(128 + signum)


def install():
    signal.signal(signal.SIGTERM, _handler)
