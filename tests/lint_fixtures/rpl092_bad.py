"""Violating fixture: a stale suppression with nothing left to suppress."""

x = 1  # repro: allow[RPL003] the seed call this guarded was removed  # expect: RPL092
