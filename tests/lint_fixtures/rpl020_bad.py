"""Violating pickle fixture: a public message dataclass declaring live
concurrency state (probed by ``check_modules``, not parsed as an AST)."""

from __future__ import annotations

import dataclasses
import threading


@dataclasses.dataclass
class BadHandle:
    name: str
    worker: threading.Thread
