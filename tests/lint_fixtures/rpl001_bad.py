"""Violating fixture: wall-clock entropy in library code."""

import os
import time
from datetime import datetime


def stamp() -> float:
    return time.time()  # expect: RPL001


def label() -> str:
    return datetime.now().isoformat()  # expect: RPL001


def nonce() -> bytes:
    return os.urandom(8)  # expect: RPL001
