"""Clean fixture: the suppression names a registered, suppressible code."""

import random


def pin(seed: int) -> None:
    random.seed(seed)  # repro: allow[RPL003] fixture: known code, used suppression
