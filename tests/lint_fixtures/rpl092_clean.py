"""Clean fixture: the suppression still matches a live finding."""

import random


def pin(seed: int) -> None:
    random.seed(seed)  # repro: allow[RPL003] fixture: suppression still in use
