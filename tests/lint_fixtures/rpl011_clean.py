"""Clean fixture: initargs ship plain data; workers rebuild state."""

import multiprocessing as mp


def _init(system, options, prefix):
    pass


def start(system, options, prefix):
    ctx = mp.get_context("fork")
    return ctx.Pool(
        2,
        initializer=_init,
        initargs=(system, options, prefix),
    )
