"""Clean fixture: the allocated prefix is reclaimed in a finally."""

from repro.dist.shm import cleanup_segments, new_segment_prefix


def run(run_id: str, body) -> None:
    prefix = new_segment_prefix(run_id)
    try:
        body(prefix)
    finally:
        cleanup_segments(prefix)
