"""Clean fixture: measuring elapsed time is fine; no entropy sources."""

import time


def timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0
