"""Unit tests for MNA assembly: stamps checked against hand calculations."""

import numpy as np
import pytest

from repro.circuit import Netlist, assemble


def dense(m):
    return np.asarray(m.todense())


class TestResistorCapacitorStamps:
    def test_two_node_divider(self):
        # 0 --R1-- a --R2-- b --R3-- 0, C at each node.
        net = Netlist()
        net.add_resistor("R1", "0", "a", 2.0)
        net.add_resistor("R2", "a", "b", 4.0)
        net.add_resistor("R3", "b", "0", 8.0)
        net.add_capacitor("Ca", "a", "0", 1e-12)
        net.add_capacitor("Cb", "b", "0", 2e-12)
        sys_ = assemble(net)
        g = dense(sys_.G)
        expected_g = np.array([
            [0.5 + 0.25, -0.25],
            [-0.25, 0.25 + 0.125],
        ])
        assert np.allclose(g, expected_g)
        c = dense(sys_.C)
        assert np.allclose(c, np.diag([1e-12, 2e-12]))

    def test_floating_capacitor_stamp(self):
        net = Netlist()
        net.add_resistor("R1", "a", "0", 1.0)
        net.add_resistor("R2", "b", "0", 1.0)
        net.add_capacitor("C1", "a", "b", 3e-12)
        sys_ = assemble(net)
        c = dense(sys_.C)
        assert np.allclose(c, 3e-12 * np.array([[1, -1], [-1, 1]]))

    def test_g_symmetric_for_rc_only(self, rc_ladder_system):
        g = dense(rc_ladder_system.G)
        assert np.allclose(g, g.T)


class TestSourceStamps:
    def test_voltage_source_rows(self):
        net = Netlist()
        net.add_voltage_source("V1", "a", "0", 1.5)
        net.add_resistor("R1", "a", "0", 3.0)
        sys_ = assemble(net)
        g = dense(sys_.G)
        # Row/col layout: [v_a, i_V1].
        assert g[0, 1] == 1.0      # KCL coupling
        assert g[1, 0] == 1.0      # branch equation
        assert sys_.bu(0.0)[1] == 1.5
        # DC solve: G x = B u gives v_a = 1.5.
        x = np.linalg.solve(g, sys_.bu(0.0))
        assert x[0] == pytest.approx(1.5)
        assert x[1] == pytest.approx(-0.5)  # source supplies 0.5 A

    def test_current_source_sign_convention(self):
        # I from node a to ground: positive value pulls a DOWN.
        net = Netlist()
        net.add_resistor("R1", "a", "0", 2.0)
        net.add_current_source("I1", "a", "0", 1.0)
        sys_ = assemble(net)
        x = np.linalg.solve(dense(sys_.G), sys_.bu(0.0))
        assert x[0] == pytest.approx(-2.0)

    def test_inductor_branch(self):
        net = Netlist()
        net.add_voltage_source("V1", "a", "0", 1.0)
        net.add_inductor("L1", "a", "b", 1e-9)
        net.add_resistor("R1", "b", "0", 5.0)
        sys_ = assemble(net)
        # At DC the inductor is a short: v_b = 1.0, i_L = 0.2.
        x = np.linalg.solve(dense(sys_.G), sys_.bu(0.0))
        names = sys_.netlist
        assert x[names.node_index("b")] == pytest.approx(1.0)
        assert x[names.inductor_index("L1")] == pytest.approx(0.2)
        # The inductance appears in C on the branch row.
        c = dense(sys_.C)
        row = names.inductor_index("L1")
        assert c[row, row] == pytest.approx(-1e-9)

    def test_input_ordering_currents_then_voltages(self, small_pdn_system):
        s = small_pdn_system
        assert s.n_current_inputs == 2
        assert list(s.current_input_indices) == [0, 1]
        assert list(s.voltage_input_indices) == [2]


class TestInputEvaluation:
    def test_fast_vector_matches_scalar(self, small_pdn_system):
        s = small_pdn_system
        for t in [0.0, 1.3e-10, 2.5e-10, 7e-10]:
            fast = s.input_vector(t)
            slow = np.array([w.value(t) for w in s.waveforms])
            assert np.allclose(fast, slow)

    def test_active_subset(self, small_pdn_system):
        s = small_pdn_system
        u = s.input_vector(2e-10, active=[0])
        assert u[1] == 0.0 and u[2] == 0.0
        assert u[0] == s.waveforms[0].value(2e-10)

    def test_b_slope_fd_exact_on_linear_segment(self, small_pdn_system):
        s = small_pdn_system
        # Inside the rise of I0: [1e-10, 1.2e-10].
        fd = s.b_slope_fd(1.05e-10, 1.15e-10)
        analytic = s.b_slope(1.05e-10)
        assert np.allclose(fd, analytic)

    def test_b_slope_fd_rejects_bad_interval(self, small_pdn_system):
        with pytest.raises(ValueError):
            small_pdn_system.b_slope_fd(1e-10, 1e-10)

    def test_bu_series_matches_pointwise(self, small_pdn_system):
        s = small_pdn_system
        times = np.array([0.0, 1.1e-10, 2.2e-10, 5e-10])
        series = s.bu_series(times)
        for k, t in enumerate(times):
            assert np.allclose(series[:, k], s.bu(t))

    def test_bu_series_active_subset(self, small_pdn_system):
        s = small_pdn_system
        times = np.array([1.5e-10, 3e-10])
        series = s.bu_series(times, active=[1])
        for k, t in enumerate(times):
            assert np.allclose(series[:, k], s.bu(t, active=[1]))


class TestStructure:
    def test_singularity_detection(self, small_pdn_system, rc_ladder_system):
        assert small_pdn_system.is_c_singular()      # V-source branch row
        assert not rc_ladder_system.is_c_singular()  # caps everywhere

    def test_gts_includes_horizon(self, small_pdn_system):
        gts = small_pdn_system.global_transition_spots(1e-9)
        assert gts[0] == 0.0
        assert gts[-1] == 1e-9

    def test_gts_union_of_lts(self, small_pdn_system):
        s = small_pdn_system
        gts = set(s.global_transition_spots(1e-9))
        for k in range(s.n_inputs):
            for t in s.local_transition_spots(k, 1e-9):
                assert any(abs(t - g) <= 1e-18 + 1e-9 * g for g in gts)

    def test_node_voltage_lookup(self, small_pdn_system):
        s = small_pdn_system
        x = np.arange(s.dim, dtype=float)
        assert s.node_voltage(x, "g0_0") == x[s.netlist.node_index("g0_0")]
        assert s.node_voltage(x, "0") == 0.0
        volts = s.node_voltages(x)
        assert volts["pad"] == x[s.netlist.node_index("pad")]
