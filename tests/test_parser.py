"""Unit tests for the SPICE-dialect parser and writer."""

import numpy as np
import pytest

from repro.circuit import (
    DC,
    PWL,
    ParseError,
    Pulse,
    assemble,
    format_netlist,
    parse_netlist,
    parse_value,
)
from repro.circuit.parser import parse_file


class TestParseValue:
    @pytest.mark.parametrize("token,expected", [
        ("4.7k", 4700.0),
        ("10p", 1e-11),
        ("1meg", 1e6),
        ("1MEG", 1e6),
        ("2.5u", 2.5e-6),
        ("3n", 3e-9),
        ("1f", 1e-15),
        ("5m", 5e-3),
        ("100", 100.0),
        ("1e-12", 1e-12),
        ("-3.3", -3.3),
        ("2.2kohm", 2200.0),
    ])
    def test_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_value("abc")


class TestParseNetlist:
    def test_basic_cards(self):
        net = parse_netlist(
            "* test\n"
            "R1 a b 1k\n"
            "C1 b 0 1p\n"
            "L1 b c 1n\n"
            "Rc c 0 1\n"
            "V1 a 0 1.8\n"
            "I1 b 0 2m\n"
        )
        assert len(net.resistors) == 2
        assert net["R1"].resistance == 1000.0
        assert net["C1"].capacitance == 1e-12
        assert net["L1"].inductance == 1e-9
        assert net["V1"].waveform == DC(1.8)
        assert net["I1"].waveform == DC(2e-3)

    def test_title_line(self):
        net = parse_netlist("my power grid title\nR1 a 0 1\n")
        assert net.title == "my power grid title"
        assert "R1" in net

    def test_pulse_source_spice_order(self):
        # SPICE: PULSE(v1 v2 td tr tf pw per) — tf BEFORE pw.
        net = parse_netlist("I1 a 0 PULSE(0 1m 1n 50p 60p 300p 2n)\nR1 a 0 1\n")
        p = net["I1"].waveform
        assert isinstance(p, Pulse)
        assert p.t_delay == 1e-9
        assert p.t_rise == 5e-11
        assert p.t_fall == 6e-11
        assert p.t_width == 3e-10
        assert p.t_period == 2e-9

    def test_pwl_source(self):
        net = parse_netlist("I1 a 0 PWL(0 0 1n 1m 2n 0)\nR1 a 0 1\n")
        w = net["I1"].waveform
        assert isinstance(w, PWL)
        assert w.value(1e-9) == pytest.approx(1e-3)

    def test_pwl_prepends_origin(self):
        net = parse_netlist("I1 a 0 PWL(1n 0.5m 2n 1m)\nR1 a 0 1\n")
        assert net["I1"].waveform.value(0.0) == pytest.approx(5e-4)

    def test_continuation_lines(self):
        net = parse_netlist("I1 a 0 PWL(0 0\n+ 1n 1m)\nR1 a 0 1\n")
        assert isinstance(net["I1"].waveform, PWL)

    def test_comments_and_blanks_skipped(self):
        net = parse_netlist("* c\n\nR1 a 0 1\n* more\nC1 a 0 1p\n")
        assert len(net) == 2

    def test_dot_end_stops_parsing(self):
        net = parse_netlist("R1 a 0 1\n.end\nR2 b 0 1\n")
        assert "R2" not in net

    def test_directives_tolerated(self):
        net = parse_netlist("R1 a 0 1\n.tran 10p 10n\n.op\n")
        assert "R1" in net

    def test_unsupported_element_reports_line(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_netlist("R1 a 0 1\nQ1 a b c model\n")

    def test_malformed_card_reports_line(self):
        with pytest.raises(ParseError, match="line 1"):
            parse_netlist("R1 a 0\n")

    def test_orphan_continuation_rejected(self):
        with pytest.raises(ParseError, match="continuation"):
            parse_netlist("+ 1n 1m\n")

    def test_bad_source_value(self):
        with pytest.raises(ParseError):
            parse_netlist("V1 a 0 one point eight\n")


class TestWriterRoundTrip:
    def test_full_round_trip(self, small_pdn):
        text = format_netlist(small_pdn, t_end=1e-9)
        reparsed = parse_netlist(text)
        a = assemble(small_pdn)
        b = assemble(reparsed)
        assert np.allclose(a.G.todense(), b.G.todense())
        assert np.allclose(a.C.todense(), b.C.todense())
        assert np.allclose(a.B.todense(), b.B.todense())
        for t in [0.0, 1.5e-10, 3e-10]:
            assert np.allclose(a.input_vector(t), b.input_vector(t))

    def test_tran_directive_emitted(self, rc_ladder):
        text = format_netlist(rc_ladder, t_end=1e-8)
        assert ".tran" in text
        assert text.rstrip().endswith(".end")

    def test_pwl_round_trip(self):
        net = parse_netlist("I1 a 0 PWL(0 0 1n 1m 2n 0)\nR1 a 0 1\n")
        again = parse_netlist(format_netlist(net))
        assert again["I1"].waveform == net["I1"].waveform

    def test_parse_file(self, tmp_path, rc_ladder):
        path = tmp_path / "ladder.spice"
        path.write_text(format_netlist(rc_ladder))
        net = parse_file(path)
        assert net.title == "ladder"
        assert len(net) == len(rc_ladder)
