"""Physics-invariant tests: passivity and energy dissipation.

An RC network is passive: with the sources off, the stored energy
``E = x^T C x / 2`` can only decrease; with DC sources, node voltages
are bounded by the source extremes (discrete maximum principle).  Any
integrator violating these on a passive network is wrong regardless of
local error — they make sharp end-to-end sanity checks.
"""

import numpy as np
import pytest

from repro.baselines import simulate_backward_euler, simulate_trapezoidal
from repro.circuit import Netlist, assemble
from repro.core import MatexSolver, SolverOptions, build_schedule


@pytest.fixture
def source_free_rc(rng):
    net = Netlist("free-rc")
    n = 16
    for i in range(n):
        parent = "0" if i == 0 else f"e{rng.integers(0, i)}"
        net.add_resistor(f"R{i}", parent, f"e{i}", float(rng.uniform(0.5, 3)))
        net.add_capacitor(f"C{i}", f"e{i}", "0",
                          float(10 ** rng.uniform(-14, -12)))
    return assemble(net)


def energies(system, states):
    c = np.asarray(system.C.todense())
    return np.array([x @ c @ x for x in states])


class TestEnergyDissipation:
    def test_matex_dissipates(self, source_free_rc, rng):
        s = source_free_rc
        x0 = rng.normal(size=s.dim)
        grid = list(np.linspace(0.0, 5e-11, 21))
        solver = MatexSolver(
            s, SolverOptions(method="rational", gamma=2e-12, eps_rel=1e-10)
        )
        res = solver.simulate(
            5e-11, x0=x0, schedule=build_schedule(s, 5e-11, global_points=grid)
        )
        e = energies(s, res.states)
        assert np.all(np.diff(e) <= 1e-12 * e[0])

    @pytest.mark.parametrize("simulate", [
        simulate_trapezoidal, simulate_backward_euler,
    ])
    def test_implicit_baselines_dissipate(self, source_free_rc, rng, simulate):
        s = source_free_rc
        x0 = rng.normal(size=s.dim)
        res = simulate(s, 2.5e-12, 5e-11, x0=x0)
        e = energies(s, res.states)
        assert np.all(np.diff(e) <= 1e-12 * e[0])

    def test_decay_toward_equilibrium(self, source_free_rc, rng):
        s = source_free_rc
        x0 = rng.normal(size=s.dim)
        solver = MatexSolver(
            s, SolverOptions(method="rational", gamma=1e-11, eps_rel=1e-10)
        )
        res = solver.simulate(1e-9, x0=x0)  # many time constants
        assert np.max(np.abs(res.final_state)) < 1e-3 * np.max(np.abs(x0))


class TestMaximumPrinciple:
    def test_dc_voltages_within_source_range(self, small_pdn_system):
        """Unloaded-at-t=0 grid: every rail between 0 and VDD."""
        from repro.baselines import dc_operating_point

        x, _ = dc_operating_point(small_pdn_system)
        rails = x[: small_pdn_system.netlist.n_nodes]
        assert np.all(rails >= -1e-12)
        assert np.all(rails <= 1.8 + 1e-12)

    def test_transient_rails_bounded_under_load(self, small_pdn_system):
        """Loads only sink current: rails never exceed VDD."""
        solver = MatexSolver(
            small_pdn_system,
            SolverOptions(method="rational", gamma=1e-11, eps_rel=1e-9),
        )
        res = solver.simulate(1e-9)
        rails = res.states[:, : small_pdn_system.netlist.n_nodes]
        assert np.all(rails <= 1.8 + 1e-6)
        assert np.all(rails >= 0.0)
