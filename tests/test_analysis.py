"""Unit tests for error metrics, the speedup model and table rendering."""

import numpy as np
import pytest

from repro.analysis import (
    SpeedupModel,
    Table,
    avg_error,
    error_metrics,
    max_error,
    relative_error_pct,
)
from repro.core import TransientResult
from repro.core.stats import SolverStats


@pytest.fixture
def pair(small_pdn_system):
    s = small_pdn_system
    times = np.array([0.0, 1e-10, 2e-10])
    base = np.zeros((3, s.dim))
    other = base.copy()
    other[:, 0] = [0.0, 0.1, 0.2]  # node-voltage column differs
    other[:, s.netlist.n_nodes] = 99.0  # branch-current diff must be ignored
    a = TransientResult(s, times, base, SolverStats())
    b = TransientResult(s, times, other, SolverStats())
    return a, b


class TestErrorMetrics:
    def test_max_and_avg(self, pair):
        a, b = pair
        m = error_metrics(b, a)
        assert m["max"] == pytest.approx(0.2)
        assert m["avg"] == pytest.approx(
            0.3 / (3 * a.system.netlist.n_nodes)
        )

    def test_branch_currents_ignored(self, pair):
        a, b = pair
        assert max_error(b, a) == pytest.approx(0.2)  # not 99

    def test_identity_is_zero(self, pair):
        a, _ = pair
        assert max_error(a, a) == 0.0
        assert avg_error(a, a) == 0.0

    def test_relative_error_pct(self, small_pdn_system):
        s = small_pdn_system
        times = np.array([0.0, 1e-10])
        ref = np.full((2, s.dim), 2.0)
        approx = ref.copy()
        approx[1, 0] = 2.1
        r = TransientResult(s, times, ref, SolverStats())
        x = TransientResult(s, times, approx, SolverStats())
        assert relative_error_pct(x, r) == pytest.approx(5.0)

    def test_relative_error_zero_reference(self, small_pdn_system):
        s = small_pdn_system
        times = np.array([0.0])
        z = TransientResult(s, times, np.zeros((1, s.dim)), SolverStats())
        assert relative_error_pct(z, z) == 0.0


class TestSpeedupModel:
    def test_eq11_reduces_to_one_without_decomposition(self):
        model = SpeedupModel(t_bs=1e-3, t_he=1e-5, t_serial=0.1)
        assert model.speedup_over_single(K=100, k=100, m=10) == pytest.approx(1.0)

    def test_eq11_grows_with_decomposition(self):
        model = SpeedupModel(t_bs=1e-3, t_he=1e-5, t_serial=0.0)
        s_coarse = model.speedup_over_single(K=100, k=50, m=10)
        s_fine = model.speedup_over_single(K=100, k=5, m=10)
        assert s_fine > s_coarse > 1.0

    def test_eq12_against_hand_computation(self):
        model = SpeedupModel(t_bs=2.0, t_he=1.0, t_serial=3.0)
        # (N*Tbs + Ts) / (k*m*Tbs + K*THe + Ts)
        expected = (1000 * 2.0 + 3.0) / (5 * 10 * 2.0 + 100 * 1.0 + 3.0)
        assert model.speedup_over_fixed(N=1000, K=100, k=5, m=10) \
            == pytest.approx(expected)

    def test_speedup_saturates_when_snapshots_dominate(self):
        model = SpeedupModel(t_bs=1e-3, t_he=1e-3, t_serial=0.0)
        s1 = model.speedup_over_fixed(N=1000, K=100, k=5, m=10)
        s2 = model.speedup_over_fixed(N=1000, K=100, k=1, m=10)
        # K*THe floor limits the gain of further decomposition.
        assert s2 / s1 < 2.0


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"], title="demo")
        t.add_row(["a", 1.0])
        t.add_row(["longer", 123456.0])
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert all(len(row) == len(lines[1]) for row in lines[1:])

    def test_row_width_validation(self):
        t = Table(["a"])
        with pytest.raises(ValueError):
            t.add_row([1, 2])

    def test_float_formatting(self):
        t = Table(["x"])
        t.add_row([1.23456e-7])
        assert "1.23e-07" in t.render() or "1.23e-7" in t.render()
