"""Integration tests: all solvers and paths agree end-to-end."""

import numpy as np
import pytest

from repro.analysis import error_metrics
from repro.baselines import simulate_trapezoidal
from repro.circuit import assemble, format_netlist, parse_netlist
from repro.core import MatexSolver, SolverOptions
from repro.dist import MatexScheduler
from repro.pdn import PdnConfig, WorkloadSpec, attach_pulse_loads, generate_power_grid


@pytest.fixture(scope="module")
def pdn_case():
    """A mid-size PDN shared by the integration tests."""
    t_end = 2e-9
    net = generate_power_grid(PdnConfig(rows=10, cols=10, n_pads=4, seed=42))
    attach_pulse_loads(net, WorkloadSpec(
        n_sources=60, n_shapes=10, t_end=t_end, time_grid_points=20, seed=42,
    ))
    system = assemble(net)
    golden = simulate_trapezoidal(
        system, 1e-12, t_end,
        record_times=system.global_transition_spots(t_end),
    )
    return system, t_end, golden


class TestAllPathsAgree:
    @pytest.mark.parametrize("method", ["inverted", "rational"])
    def test_single_node_matches_golden(self, pdn_case, method):
        system, t_end, golden = pdn_case
        solver = MatexSolver(
            system,
            SolverOptions(method=method, gamma=1e-10, eps_rel=1e-7),
        )
        res = solver.simulate(t_end)
        errs = error_metrics(res, golden, times=golden.times)
        assert errs["max"] < 1e-4

    def test_distributed_matches_golden(self, pdn_case):
        system, t_end, golden = pdn_case
        dres = MatexScheduler(
            system,
            SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-7),
        ).run(t_end)
        errs = error_metrics(dres.result, golden, times=golden.times)
        assert errs["max"] < 1e-4

    def test_distributed_matches_single_node(self, pdn_case):
        system, t_end, _ = pdn_case
        opts = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)
        single = MatexSolver(system, opts).simulate(t_end)
        dist = MatexScheduler(system, opts).run(t_end)
        errs = error_metrics(dist.result, single, times=single.times)
        assert errs["max"] < 1e-5

    def test_distributed_uses_fewer_pairs_per_node(self, pdn_case):
        system, t_end, _ = pdn_case
        opts = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-7)
        single = MatexSolver(system, opts).simulate(t_end)
        dist = MatexScheduler(system, opts).run(t_end)
        assert (dist.max_node_substitution_pairs
                < single.stats.n_solves_transient / 3)


class TestNetlistFileWorkflow:
    def test_roundtrip_then_simulate(self, pdn_case, tmp_path):
        """Export to SPICE text, re-parse, simulate: identical physics."""
        system, t_end, golden = pdn_case
        text = format_netlist(system.netlist, t_end=t_end)
        reparsed = assemble(parse_netlist(text))
        solver = MatexSolver(
            reparsed,
            SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-7),
        )
        res = solver.simulate(t_end)
        # Compare against golden computed on the original system.
        n_nodes = reparsed.netlist.n_nodes
        a = res.sample(golden.times)[:, :n_nodes]
        b = golden.sample(golden.times)[:, :n_nodes]
        assert np.max(np.abs(a - b)) < 1e-4
