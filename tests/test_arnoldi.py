"""Unit tests for the Arnoldi process."""

import numpy as np
import pytest

from repro.linalg import ArnoldiBreakdown, arnoldi


class TestArnoldiRelations:
    def test_orthonormal_basis(self, rng):
        a = rng.normal(size=(30, 30))
        v = rng.normal(size=30)
        res = arnoldi(lambda x: a @ x, v, m_max=12)
        vtv = res.V.T @ res.V
        assert np.allclose(vtv, np.eye(res.m + 1), atol=1e-12)

    def test_arnoldi_identity(self, rng):
        """A V_m = V_{m+1} H  (the fundamental recurrence)."""
        a = rng.normal(size=(25, 25))
        v = rng.normal(size=25)
        res = arnoldi(lambda x: a @ x, v, m_max=10)
        lhs = a @ res.Vm
        rhs = res.V @ res.H
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_beta_is_start_norm(self, rng):
        v = rng.normal(size=10)
        res = arnoldi(lambda x: x, v, m_max=3)
        assert res.beta == pytest.approx(np.linalg.norm(v))

    def test_hessenberg_structure(self, rng):
        a = rng.normal(size=(20, 20))
        res = arnoldi(lambda x: a @ x, rng.normal(size=20), m_max=8)
        h = res.H
        for i in range(h.shape[0]):
            for j in range(h.shape[1]):
                if i > j + 1:
                    assert h[i, j] == 0.0


class TestBreakdown:
    def test_happy_breakdown_on_invariant_subspace(self, rng):
        # v is an eigenvector: the subspace is invariant after 1 step.
        a = np.diag([1.0, 2.0, 3.0])
        v = np.array([1.0, 0.0, 0.0])
        res = arnoldi(lambda x: a @ x, v, m_max=3)
        assert res.happy_breakdown
        assert res.m == 1
        assert res.converged

    def test_low_rank_operator_breaks_down_early(self, rng):
        u = rng.normal(size=15)
        w = rng.normal(size=15)
        a = np.outer(u, w)  # rank 1
        res = arnoldi(lambda x: a @ x, rng.normal(size=15), m_max=10)
        assert res.happy_breakdown
        assert res.m <= 3

    def test_small_scale_operator_not_mistaken_for_breakdown(self, rng):
        # Operator with tiny norm (like G^-1 C on fast circuits) must not
        # trigger a spurious happy breakdown.
        a = 1e-14 * rng.normal(size=(20, 20))
        res = arnoldi(lambda x: a @ x, rng.normal(size=20), m_max=8)
        assert not res.happy_breakdown
        assert res.m == 8

    def test_zero_start_vector(self):
        res = arnoldi(lambda x: x, np.zeros(5), m_max=3)
        assert res.m == 0
        assert res.beta == 0.0
        assert res.converged

    def test_nonfinite_operator_raises(self, rng):
        def bad(x):
            return np.full_like(x, np.nan)

        with pytest.raises(ArnoldiBreakdown):
            arnoldi(bad, rng.normal(size=5), m_max=3)


class TestConvergenceControl:
    def test_callback_stops_iteration(self, rng):
        a = rng.normal(size=(30, 30))
        calls = []

        def stop_at_4(m, H, V, beta):
            calls.append(m)
            return m >= 4

        res = arnoldi(lambda x: a @ x, rng.normal(size=30),
                      m_max=20, convergence=stop_at_4)
        assert res.m == 4
        assert res.converged

    def test_min_dim_defers_checks(self, rng):
        a = rng.normal(size=(30, 30))
        seen = []

        def spy(m, H, V, beta):
            seen.append(m)
            return True

        arnoldi(lambda x: a @ x, rng.normal(size=30),
                m_max=20, convergence=spy, min_dim=5)
        assert seen[0] == 5

    def test_m_max_caps_dimension(self, rng):
        a = rng.normal(size=(40, 40))
        res = arnoldi(lambda x: a @ x, rng.normal(size=40),
                      m_max=7, convergence=lambda *a: False)
        assert res.m == 7
        assert not res.converged

    def test_m_max_validation(self, rng):
        with pytest.raises(ValueError):
            arnoldi(lambda x: x, rng.normal(size=5), m_max=0)
