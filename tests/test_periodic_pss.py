"""Tests for the periodic-steady-state extension."""

import numpy as np
import pytest

from repro.circuit import Netlist, Pulse, assemble
from repro.core import MatexSolver, SolverOptions
from repro.extensions import (
    check_input_periodicity,
    periodic_steady_state,
)

PERIOD = 5e-10


@pytest.fixture
def clocked_system():
    """Small RC grid under two periodic clock loads."""
    net = Netlist("clocked")
    for i in range(4):
        for j in range(4):
            if j + 1 < 4:
                net.add_resistor(f"Rh{i}{j}", f"c{i}_{j}", f"c{i}_{j + 1}", 1.0)
            if i + 1 < 4:
                net.add_resistor(f"Rv{i}{j}", f"c{i}_{j}", f"c{i + 1}_{j}", 1.0)
            net.add_capacitor(f"C{i}{j}", f"c{i}_{j}", "0", 3e-13)
    net.add_resistor("Rg", "c0_0", "0", 0.1)
    net.add_current_source(
        "I0", "c3_3", "0",
        Pulse(0.0, 2e-3, 5e-11, 1e-11, 1e-10, 1e-11, t_period=PERIOD),
    )
    net.add_current_source(
        "I1", "c1_2", "0",
        Pulse(0.0, 1e-3, 2e-10, 1e-11, 5e-11, 1e-11, t_period=PERIOD),
    )
    return assemble(net)


class TestPeriodicityCheck:
    def test_accepts_true_period(self, clocked_system):
        assert check_input_periodicity(clocked_system, PERIOD)
        assert check_input_periodicity(clocked_system, 2 * PERIOD)

    def test_rejects_wrong_period(self, clocked_system):
        assert not check_input_periodicity(clocked_system, 0.7 * PERIOD)

    def test_dc_inputs_always_pass(self, rc_ladder_system):
        # The ladder's pulse is NOT periodic -> fails; a DC-only netlist
        # would pass for any period (constants skipped).
        assert not check_input_periodicity(rc_ladder_system, 1e-10)


class TestPeriodicSteadyState:
    def test_fixed_point_property(self, clocked_system):
        pss = periodic_steady_state(clocked_system, PERIOD, tol=1e-10)
        scale = max(1.0, float(np.abs(pss.state).max()))
        assert pss.residual < 1e-7 * scale

    def test_long_transient_converges_to_pss(self, clocked_system):
        pss = periodic_steady_state(clocked_system, PERIOD, tol=1e-10)
        solver = MatexSolver(
            clocked_system,
            SolverOptions(method="rational", gamma=5e-12, eps_rel=1e-10),
        )
        x = np.zeros(clocked_system.dim)
        for _ in range(12):  # march 12 periods from rest
            x = solver.simulate(PERIOD, x0=x).final_state
        assert np.max(np.abs(x - pss.state)) < 1e-6

    def test_wrong_period_rejected(self, clocked_system):
        with pytest.raises(ValueError, match="not periodic"):
            periodic_steady_state(clocked_system, 0.7 * PERIOD)

    def test_period_validation(self, clocked_system):
        with pytest.raises(ValueError, match="positive"):
            periodic_steady_state(clocked_system, -1.0)

    def test_iteration_count_reported(self, clocked_system):
        pss = periodic_steady_state(clocked_system, PERIOD)
        assert pss.gmres_iterations >= 1
        assert pss.period == PERIOD
