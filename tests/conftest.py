"""Shared fixtures: small deterministic circuits for the whole suite,
plus the /dev/shm leak sanitizer guarding the segment lifecycle."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.circuit import Netlist, Pulse, assemble


@pytest.fixture(scope="session", autouse=True)
def shm_leak_sanitizer():
    """Fail the suite if any ``repro*`` /dev/shm segment survives it.

    The zero-copy transport names every segment ``repro{pid}x...``
    (``repro.dist.shm.new_segment_prefix``) and guarantees reclamation
    through per-failure sweeps plus atexit/signal hooks.  A segment
    still present after the session means some code path allocated
    outside that lifecycle — the sanitizer reclaims it so one leak
    cannot poison later runs, then fails loudly.
    """
    shm = Path("/dev/shm")
    if not shm.is_dir():  # non-Linux: transport falls back off-shm
        yield
        return
    before = {p.name for p in shm.glob("repro*")}
    yield
    leaked = sorted(
        p.name for p in shm.glob("repro*") if p.name not in before
    )
    for name in leaked:
        try:
            (shm / name).unlink()
        except OSError:
            pass
    if leaked:
        pytest.fail(
            "leaked /dev/shm segments survived the test session "
            f"(reclaimed now): {', '.join(leaked)}",
            pytrace=False,
        )


def build_rc_ladder(n: int = 10, with_pulse: bool = True) -> Netlist:
    """Current-driven RC ladder: invertible C (dense-oracle friendly)."""
    net = Netlist(f"rc-ladder-{n}")
    for i in range(n):
        head = "0" if i == 0 else f"m{i}"
        net.add_resistor(f"R{i}", head, f"m{i + 1}", 2.0 + 0.1 * i)
        net.add_capacitor(f"C{i}", f"m{i + 1}", "0", 1e-13 * (1 + i))
    if with_pulse:
        net.add_current_source(
            "I0", f"m{n}", "0",
            Pulse(0.0, 1e-3, 1e-10, 5e-11, 2e-10, 5e-11),
        )
    return net


def build_small_pdn() -> Netlist:
    """Tiny grid with a VDD pad: singular C (regularization-free path)."""
    net = Netlist("small-pdn")
    for i in range(4):
        for j in range(4):
            if j + 1 < 4:
                net.add_resistor(f"Rh{i}{j}", f"g{i}_{j}", f"g{i}_{j + 1}", 0.5)
            if i + 1 < 4:
                net.add_resistor(f"Rv{i}{j}", f"g{i}_{j}", f"g{i + 1}_{j}", 0.5)
            net.add_capacitor(f"C{i}{j}", f"g{i}_{j}", "0", 2e-13)
    net.add_voltage_source("Vdd", "pad", "0", 1.8)
    net.add_resistor("Rpad", "pad", "g0_0", 0.05)
    net.add_current_source(
        "I0", "g3_3", "0", Pulse(0.0, 2e-3, 1e-10, 2e-11, 1e-10, 2e-11)
    )
    net.add_current_source(
        "I1", "g1_2", "0", Pulse(0.0, 1e-3, 1.9e-10, 2e-11, 5e-11, 3e-11)
    )
    return net


def build_multi_source_mesh(n: int = 6) -> Netlist:
    """Invertible-C mesh with three pulse sources (two sharing a shape)."""
    net = Netlist("multi-source-mesh")
    for i in range(n):
        for j in range(n):
            if j + 1 < n:
                net.add_resistor(f"Rh{i}_{j}", f"n{i}_{j}", f"n{i}_{j + 1}", 2.0)
            if i + 1 < n:
                net.add_resistor(f"Rv{i}_{j}", f"n{i}_{j}", f"n{i + 1}_{j}", 2.0)
            net.add_capacitor(f"C{i}_{j}", f"n{i}_{j}", "0", 1e-13 * (1 + i + j))
    net.add_resistor("Rg", "n0_0", "0", 0.05)
    net.add_current_source(
        "I1", f"n{n - 1}_{n - 1}", "0",
        Pulse(0.0, 5e-3, 1e-10, 5e-11, 2e-10, 5e-11),
    )
    net.add_current_source(
        "I2", "n2_3", "0", Pulse(0.0, 3e-3, 2e-10, 3e-11, 1e-10, 4e-11)
    )
    net.add_current_source(
        "I3", "n4_1", "0", Pulse(0.0, 2e-3, 1e-10, 5e-11, 2e-10, 5e-11)
    )
    return net


@pytest.fixture
def rc_ladder():
    return build_rc_ladder()


@pytest.fixture
def rc_ladder_system(rc_ladder):
    return assemble(rc_ladder)


@pytest.fixture
def small_pdn():
    return build_small_pdn()


@pytest.fixture
def small_pdn_system(small_pdn):
    return assemble(small_pdn)


@pytest.fixture
def mesh_system():
    return assemble(build_multi_source_mesh())


@pytest.fixture
def rng():
    return np.random.default_rng(20140601)  # DAC'14 started June 1st
