"""The plan → compile → execute layer (repro.plan).

The contract under test is the tentpole guarantee: a scenario executed
through a compiled plan is **bit-for-bit identical** to an independent
cold ``MatexScheduler`` run on the scenario-bound system — compiling is
an amortisation, never an approximation.  Plus: pickle round-trips of
``CompiledPlan``, scenario validation against the frozen grid, and the
scheduler's delegation (including the ``batch=`` UserWarning satellite).
"""

import pickle

import numpy as np
import pytest

from repro.circuit import Netlist, Pulse, assemble
from repro.circuit.waveforms import DC, PWL, Waveform
from repro.core import SolverOptions
from repro.dist import MatexScheduler, SerialExecutor
from repro.linalg.lu import FACTORIZATION_CACHE
from repro.plan import (
    PlanError,
    Scenario,
    Session,
    SimulationPlan,
    load_scenarios_json,
)

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)
T_END = 1e-9


def cold_run(system, scenario=None, **sched_kwargs):
    """An independent cold run: cleared cache, fresh scheduler."""
    if scenario is not None:
        system = scenario.bind(system)
    FACTORIZATION_CACHE.clear()
    return MatexScheduler(system, OPTS, **sched_kwargs).run(T_END)


class TestWaveformScaling:
    def test_dc(self):
        assert DC(2.0).scaled(1.5) == DC(3.0)

    def test_pwl_scales_values_not_times(self):
        w = PWL([(0.0, 1.0), (1e-10, 3.0), (2e-10, 0.5)])
        s = w.scaled(2.0)
        assert [t for t, _ in s.points] == [t for t, _ in w.points]
        assert [v for _, v in s.points] == [2.0, 6.0, 1.0]
        assert s.transition_spots(1e-9) == w.transition_spots(1e-9)

    def test_pulse_scales_amplitudes_not_timing(self):
        w = Pulse(1e-4, 2e-3, 1e-10, 2e-11, 1e-10, 2e-11, t_period=4e-10)
        s = w.scaled(3.0)
        assert (s.v1, s.v2) == (1e-4 * 3.0, 2e-3 * 3.0)
        assert s.bump_shape() == w.bump_shape()
        assert s.transition_spots(1e-9) == w.transition_spots(1e-9)

    def test_base_class_rejects_unknown_waveforms(self):
        class Weird(Waveform):
            pass

        with pytest.raises(NotImplementedError, match="scaled"):
            Weird().scaled(2.0)


class TestRebindSources:
    def test_matrices_are_shared(self, mesh_system):
        bound = mesh_system.rebind_sources(scales={0: 2.0})
        assert bound.C is mesh_system.C
        assert bound.G is mesh_system.G
        assert bound.B is mesh_system.B
        assert bound.waveforms[0] != mesh_system.waveforms[0]
        assert bound.waveforms[1] is mesh_system.waveforms[1]

    def test_override_then_scale(self, mesh_system):
        w = Pulse(0.0, 1e-3, 1e-10, 5e-11, 2e-10, 5e-11)
        bound = mesh_system.rebind_sources(
            overrides={0: w}, scales={0: 2.0}
        )
        assert bound.waveforms[0] == w.scaled(2.0)

    def test_out_of_range_column(self, mesh_system):
        with pytest.raises(IndexError, match="out of range"):
            mesh_system.rebind_sources(scales={99: 2.0})


class TestScenario:
    def test_normalisation_and_accessors(self):
        sc = Scenario("s", scales={3: 1.5, 1: 0.5})
        assert sc.scales == ((1, 0.5), (3, 1.5))
        assert sc.changed_columns == (1, 3)
        assert not sc.is_baseline
        assert Scenario().is_baseline

    def test_bind_baseline_returns_same_system(self, mesh_system):
        assert Scenario().bind(mesh_system) is mesh_system


class TestSimulationPlanValidation:
    def test_t_end_positive(self, mesh_system):
        with pytest.raises(ValueError, match="t_end must be positive"):
            SimulationPlan(mesh_system, OPTS, t_end=0.0)

    def test_unknown_decomposition(self, mesh_system):
        with pytest.raises(ValueError, match="unknown decomposition"):
            SimulationPlan(mesh_system, OPTS, t_end=T_END,
                           decomposition="magic")

    def test_bad_batch(self, mesh_system):
        with pytest.raises(ValueError, match="batch must be"):
            SimulationPlan(mesh_system, OPTS, t_end=T_END, batch=0)

    def test_all_constant_inputs_rejected_at_compile(self):
        net = Netlist("dc-only")
        net.add_resistor("R1", "a", "0", 1.0)
        net.add_capacitor("C1", "a", "0", 1e-12)
        net.add_current_source("I1", "a", "0", 1e-3)
        with pytest.raises(ValueError, match="constant"):
            SimulationPlan(assemble(net), OPTS, t_end=T_END).compile()


class TestCompile:
    def test_freezes_groups_grid_and_schedules(self, mesh_system):
        compiled = SimulationPlan(mesh_system, OPTS, t_end=T_END).compile()
        assert compiled.n_nodes == len(compiled.groups) > 0
        assert len(compiled.schedules) == compiled.n_nodes
        assert compiled.global_points[0] == 0.0
        assert compiled.global_points[-1] == pytest.approx(T_END)
        for _g, sched in zip(compiled.groups, compiled.schedules):
            assert sched.points == compiled.global_points
            assert sched.is_lts[0]
        assert compiled.x_dc.shape == (mesh_system.dim,)
        assert "compiled plan" in compiled.summary()

    def test_priming_factors_the_pencil_once(self, mesh_system):
        FACTORIZATION_CACHE.clear()
        SimulationPlan(mesh_system, OPTS, t_end=T_END).compile(prime=True)
        assert len(FACTORIZATION_CACHE) == 2  # G + C+gammaG
        _, misses = FACTORIZATION_CACHE.counters()
        assert misses == 2

    def test_prime_false_skips_the_pencil(self, mesh_system):
        FACTORIZATION_CACHE.clear()
        SimulationPlan(mesh_system, OPTS, t_end=T_END).compile(prime=False)
        assert len(FACTORIZATION_CACHE) == 1  # only G (DC analysis)

    def test_system_fingerprint_tracks_pencil_inputs(self, mesh_system):
        plan = SimulationPlan(mesh_system, OPTS, t_end=T_END)
        a = plan.compile()
        b = plan.compile()
        assert a.system_fingerprint() == b.system_fingerprint()
        other = SimulationPlan(
            mesh_system, OPTS.with_method("inverted"), t_end=T_END
        ).compile()
        # Same pencil inputs except gamma is still recorded: rational
        # vs inverted share (C, G, B) so only a gamma change alters it.
        assert other.system_fingerprint() == a.system_fingerprint()


class TestSessionParity:
    """Sweep results must be bitwise identical to independent cold runs."""

    @pytest.fixture
    def scenarios(self):
        return [
            Scenario(f"p{i}", scales={0: 1.0 + 0.25 * i, 1: 0.9})
            for i in range(3)
        ]

    def test_stacked_sweep_matches_cold_runs_bitwise(
        self, mesh_system, scenarios
    ):
        compiled = SimulationPlan(mesh_system, OPTS, t_end=T_END).compile()
        with Session(compiled) as session:
            sweep = session.sweep(scenarios)
        for sc, res in zip(scenarios, sweep):
            cold = cold_run(mesh_system, sc)
            assert res.result.states.tobytes() == cold.result.states.tobytes()
            assert res.result.times.tobytes() == cold.result.times.tobytes()
            assert res.scenario == sc.name
            assert res.n_nodes == cold.n_nodes

    def test_stack_chunking_does_not_change_bits(
        self, mesh_system, scenarios
    ):
        compiled = SimulationPlan(mesh_system, OPTS, t_end=T_END).compile()
        with Session(compiled) as session:
            stacked = session.sweep(scenarios, stack="auto")
        with Session(compiled) as session:
            chunked = session.sweep(scenarios, stack=1)
        for a, b in zip(stacked, chunked):
            assert a.result.states.tobytes() == b.result.states.tobytes()

    def test_batch_off_session_matches_too(self, mesh_system, scenarios):
        compiled = SimulationPlan(
            mesh_system, OPTS, t_end=T_END, batch="off"
        ).compile()
        with Session(compiled) as session:
            sweep = session.sweep(scenarios)
        for sc, res in zip(scenarios, sweep):
            cold = cold_run(mesh_system, sc)
            assert res.result.states.tobytes() == cold.result.states.tobytes()

    def test_baseline_scenario_reuses_compiled_dc(self, mesh_system):
        compiled = SimulationPlan(mesh_system, OPTS, t_end=T_END).compile()
        with Session(compiled) as session:
            res = session.run()  # None = baseline
        assert res.scenario is None
        assert res.dc_seconds == compiled.dc_seconds
        cold = cold_run(mesh_system)
        assert res.result.states.tobytes() == cold.result.states.tobytes()

    def test_scheduler_delegation_is_bit_identical_to_session(
        self, mesh_system
    ):
        """The single-run path and the sweep path are the same code."""
        sched = MatexScheduler(mesh_system, OPTS).run(T_END)
        compiled = SimulationPlan(
            mesh_system, OPTS, t_end=T_END, batch="off"
        ).compile()
        with Session(compiled) as session:
            base = session.run()
        assert sched.result.states.tobytes() == base.result.states.tobytes()

    def test_session_amortises_factorisations(self, mesh_system, scenarios):
        """After the first scenario, nothing is ever factored again."""
        FACTORIZATION_CACHE.clear()
        compiled = SimulationPlan(mesh_system, OPTS, t_end=T_END).compile()
        with Session(compiled) as session:
            first = session.run(scenarios[0])
            later = session.sweep(scenarios[1:])
        assert first.factor_cache_misses == 2  # G + pencil, at compile
        for res in later:
            assert res.factor_cache_misses == 0
            assert res.factor_cache_hits >= 1  # cache-served scenario DC


class TestCompiledPlanPickle:
    """Satellite: compile → pickle → unpickle → execute is bit-exact."""

    def test_round_trip_executes_bitwise_identically(self, mesh_system):
        scenarios = [Scenario("hot", scales={0: 1.3}), None]
        compiled = SimulationPlan(mesh_system, OPTS, t_end=T_END).compile()
        with Session(compiled) as session:
            reference = session.sweep(scenarios)

        clone = pickle.loads(pickle.dumps(compiled))
        # Fresh cache = the unpickling process never saw these factors.
        FACTORIZATION_CACHE.clear()
        with Session(clone) as session:
            replayed = session.sweep(scenarios)

        for ref, rep in zip(reference, replayed):
            assert ref.result.states.tobytes() == rep.result.states.tobytes()
            assert ref.result.times.tobytes() == rep.result.times.tobytes()
        np.testing.assert_array_equal(clone.x_dc, compiled.x_dc)
        assert clone.global_points == compiled.global_points
        assert clone.groups == compiled.groups

    def test_frozen_decisions_survive_the_pipe(self, mesh_system):
        compiled = SimulationPlan(mesh_system, OPTS, t_end=T_END).compile()
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.schedules == compiled.schedules
        assert clone.decomposition == compiled.decomposition
        assert clone.batch == compiled.batch
        assert clone.system_fingerprint() == compiled.system_fingerprint()


class TestScenarioValidation:
    def test_spot_moving_override_is_rejected(self, mesh_system):
        moved = Pulse(0.0, 5e-3, 1.3e-10, 5e-11, 2e-10, 5e-11)
        compiled = SimulationPlan(mesh_system, OPTS, t_end=T_END).compile()
        with Session(compiled) as session:
            with pytest.raises(PlanError, match="transition grid"):
                session.run(Scenario("bad", overrides={0: moved}))

    def test_zero_scale_is_rejected(self, mesh_system):
        compiled = SimulationPlan(mesh_system, OPTS, t_end=T_END).compile()
        with Session(compiled) as session:
            with pytest.raises(PlanError, match="constancy"):
                session.run(Scenario("dead", scales={0: 0.0}))

    def test_spot_preserving_override_is_accepted(self, mesh_system):
        base = mesh_system.waveforms[0]
        taller = Pulse(
            base.v1, base.v2 * 2.0, base.t_delay, base.t_rise,
            base.t_width, base.t_fall, t_period=base.t_period,
        )
        sc = Scenario("tall", overrides={0: taller})
        compiled = SimulationPlan(mesh_system, OPTS, t_end=T_END).compile()
        with Session(compiled) as session:
            res = session.run(sc)
        cold = cold_run(mesh_system, sc)
        assert res.result.states.tobytes() == cold.result.states.tobytes()

    def test_bump_split_plans_reject_scenarios(self, mesh_system):
        compiled = SimulationPlan(
            mesh_system, OPTS, t_end=T_END, decomposition="bump-split"
        ).compile()
        with Session(compiled) as session:
            # Baseline still works...
            session.run()
            # ...but rebinding under split-bump overrides cannot.
            with pytest.raises(PlanError, match="bump-split"):
                session.run(Scenario("hot", scales={0: 1.2}))

    def test_validation_happens_before_any_execution(self, mesh_system):
        compiled = SimulationPlan(mesh_system, OPTS, t_end=T_END).compile()
        with Session(compiled) as session:
            with pytest.raises(PlanError):
                session.sweep([
                    Scenario("ok", scales={0: 1.1}),
                    Scenario("bad", scales={0: 0.0}),
                ])
            assert session.n_scenarios_run == 0


class TestSchedulerBatchWarning:
    """Satellite: batch= with an explicit executor warns, not silence."""

    def test_warns_when_batch_cannot_apply(self, mesh_system):
        sched = MatexScheduler(mesh_system, OPTS, batch="auto")
        ex = SerialExecutor(mesh_system, OPTS, batch_width="auto")
        with pytest.warns(UserWarning, match="batch"):
            res = sched.run(T_END, executor=ex)
        assert res.n_nodes > 0

    def test_no_warning_for_default_batch(
        self, mesh_system, recwarn
    ):
        ex = SerialExecutor(mesh_system, OPTS)
        MatexScheduler(mesh_system, OPTS).run(T_END, executor=ex)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, UserWarning)]

    def test_no_warning_without_explicit_executor(
        self, mesh_system, recwarn
    ):
        MatexScheduler(mesh_system, OPTS, batch="auto").run(T_END)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, UserWarning)]


class TestLoadScenariosJson:
    def test_spec_round_trip(self, tmp_path, mesh_system):
        spec = tmp_path / "spec.json"
        spec.write_text(
            '[{"name": "nominal"},'
            ' {"name": "hot", "scale_loads": 1.3},'
            ' {"name": "mixed", "scale_loads": 1.1, "scale": {"0": 0.7}}]'
        )
        scenarios = load_scenarios_json(spec, mesh_system)
        assert [s.name for s in scenarios] == ["nominal", "hot", "mixed"]
        assert scenarios[0].is_baseline
        hot = dict(scenarios[1].scales)
        assert all(hot[k] == 1.3 for k in mesh_system.current_input_indices)
        mixed = dict(scenarios[2].scales)
        assert mixed[0] == 0.7  # per-column beats scale_loads
        assert mixed[1] == 1.1

    def test_bad_specs_are_rejected(self, tmp_path, mesh_system):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "a list"}')
        with pytest.raises(ValueError, match="JSON list"):
            load_scenarios_json(bad, mesh_system)
        bad.write_text('[{"name": "x", "typo_key": 1}]')
        with pytest.raises(ValueError, match="unknown keys"):
            load_scenarios_json(bad, mesh_system)
        bad.write_text('[{"scale": {"999": 1.0}}]')
        with pytest.raises(ValueError, match="out of range"):
            load_scenarios_json(bad, mesh_system)
