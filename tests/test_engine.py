"""Tests for the integrator engine: registry, sinks, stepping loop.

The bit-for-bit tests pin the refactor contract: resolving an
integrator through the registry must produce *exactly* the trajectory
of the long-standing ``simulate_*`` / ``MatexSolver`` entry points —
same arithmetic, same order, no drift.
"""

import numpy as np
import pytest

from repro.baselines import (
    simulate_adaptive_trapezoidal,
    simulate_backward_euler,
    simulate_forward_euler,
    simulate_trapezoidal,
)
from repro.core import MatexSolver, SolverOptions
from repro.engine import (
    DownsamplingSink,
    MemorySink,
    NpzStreamSink,
    SteppingLoop,
    available_integrators,
    get_integrator,
    integrator_aliases,
    make_sink,
)
from repro.core.stats import SolverStats


class TestRegistry:
    def test_all_integrators_registered(self):
        names = available_integrators()
        for expected in ("r-matex", "i-matex", "mexp", "tr", "be", "fe",
                         "tr-adaptive"):
            assert expected in names

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError) as exc:
            get_integrator("rk4")
        message = str(exc.value)
        assert "registered integrators" in message
        for name in available_integrators():
            assert name in message

    def test_paper_aliases_resolve(self):
        assert get_integrator("rmatex") is get_integrator("r-matex")
        assert get_integrator("imatex") is get_integrator("i-matex")
        assert get_integrator("standard") is get_integrator("mexp")
        assert get_integrator("trapezoidal") is get_integrator("tr")
        assert get_integrator("BE-Fixed") is get_integrator("be")

    def test_alias_map_covers_canonicals(self):
        aliases = integrator_aliases()
        for name in available_integrators():
            assert aliases[name] == name

    def test_name_attribute_set(self):
        assert get_integrator("tr").name == "tr"
        assert get_integrator("adaptive-tr").name == "tr-adaptive"


class TestBitForBitParity:
    """Registry strategies reproduce the legacy entry points exactly."""

    def test_tr_matches_wrapper(self, mesh_system):
        x0 = np.zeros(mesh_system.dim)
        legacy = simulate_trapezoidal(mesh_system, 1e-11, 1e-9, x0=x0)
        via_registry = get_integrator("tr")(mesh_system, 1e-11).simulate(
            1e-9, x0=x0
        )
        np.testing.assert_array_equal(via_registry.states, legacy.states)
        np.testing.assert_array_equal(via_registry.times, legacy.times)
        assert via_registry.method == legacy.method == "tr-fixed"

    def test_be_matches_wrapper(self, mesh_system):
        x0 = np.zeros(mesh_system.dim)
        legacy = simulate_backward_euler(mesh_system, 2e-12, 1e-10, x0=x0)
        via_registry = get_integrator("be")(mesh_system, 2e-12).simulate(
            1e-10, x0=x0
        )
        np.testing.assert_array_equal(via_registry.states, legacy.states)

    def test_fe_matches_wrapper(self, rc_ladder_system):
        x0 = np.zeros(rc_ladder_system.dim)
        legacy = simulate_forward_euler(rc_ladder_system, 1e-15, 2e-13, x0=x0)
        via_registry = get_integrator("fe")(
            rc_ladder_system, 1e-15
        ).simulate(2e-13, x0=x0)
        np.testing.assert_array_equal(via_registry.states, legacy.states)
        np.testing.assert_array_equal(via_registry.times, legacy.times)

    def test_adaptive_tr_matches_wrapper(self, mesh_system):
        x0 = np.zeros(mesh_system.dim)
        legacy = simulate_adaptive_trapezoidal(
            mesh_system, 1e-9, tol=1e-5, x0=x0
        )
        via_registry = get_integrator("tr-adaptive")(
            mesh_system, tol=1e-5
        ).simulate(1e-9, x0=x0)
        np.testing.assert_array_equal(via_registry.states, legacy.states)
        np.testing.assert_array_equal(via_registry.times, legacy.times)
        assert (via_registry.stats.n_krylov_bases
                == legacy.stats.n_krylov_bases)

    @pytest.mark.parametrize("name,method", [
        ("r-matex", "rational"),
        ("i-matex", "inverted"),
        ("mexp", "standard"),
    ])
    def test_matex_flavours_match_solver(self, name, method, mesh_system):
        x0 = np.zeros(mesh_system.dim)
        opts = SolverOptions(method=method, gamma=1e-10, eps_rel=1e-8)
        legacy = MatexSolver(mesh_system, opts).simulate(1e-9, x0=x0)
        via_registry = get_integrator(name)(
            mesh_system, gamma=1e-10, eps_rel=1e-8
        ).simulate(1e-9, x0=x0)
        np.testing.assert_array_equal(via_registry.states, legacy.states)
        assert via_registry.method == legacy.method

    def test_reused_instance_reports_factor_time_once(self, mesh_system):
        """A reused integrator must not re-bill factorisation wall time."""
        tr = get_integrator("tr")(mesh_system, 1e-11)
        x0 = np.zeros(mesh_system.dim)
        first = tr.simulate(1e-9, x0=x0)
        second = tr.simulate(1e-9, x0=x0)
        assert first.stats.factor_seconds >= 0.0
        assert second.stats.factor_seconds == 0.0  # nothing was factored

    def test_matex_accepts_full_options(self, mesh_system):
        # A SolverOptions with the "wrong" method is overridden by the
        # strategy's pinned flavour.
        opts = SolverOptions(method="standard", gamma=1e-10)
        solver = get_integrator("r-matex")(mesh_system, options=opts)
        assert solver.options.method == "rational"

    def test_matex_rejects_options_plus_fields(self, mesh_system):
        opts = SolverOptions(method="rational", gamma=1e-10)
        with pytest.raises(TypeError, match="not both"):
            get_integrator("r-matex")(mesh_system, options=opts,
                                      eps_rel=1e-9)


class TestSinks:
    def test_memory_sink_roundtrip(self):
        sink = MemorySink()
        sink.open(3, n_hint=4)
        for k in range(4):
            sink.append(float(k), np.full(3, k, dtype=float))
        times, states = sink.finalize()
        np.testing.assert_array_equal(times, [0.0, 1.0, 2.0, 3.0])
        assert states.shape == (4, 3)
        np.testing.assert_array_equal(states[2], [2.0, 2.0, 2.0])

    def test_memory_sink_without_hint(self):
        sink = MemorySink()
        sink.open(2, n_hint=None)
        sink.append(0.0, np.array([1.0, 2.0]))
        sink.append(1.0, np.array([3.0, 4.0]))
        times, states = sink.finalize()
        assert states.shape == (2, 2)
        np.testing.assert_array_equal(states[1], [3.0, 4.0])

    def test_memory_sink_overflowing_hint(self):
        sink = MemorySink()
        sink.open(1, n_hint=2)
        for k in range(5):
            sink.append(float(k), np.array([float(k)]))
        times, states = sink.finalize()
        assert states.shape == (5, 1)
        np.testing.assert_array_equal(states[:, 0], np.arange(5.0))

    def test_downsampling_keeps_first_and_last(self):
        sink = DownsamplingSink(stride=4)
        sink.open(1, n_hint=10)
        for k in range(10):
            sink.append(float(k), np.array([float(k)]))
        times, states = sink.finalize()
        assert times[0] == 0.0
        assert times[-1] == 9.0  # final point forced in
        np.testing.assert_array_equal(times, [0.0, 4.0, 8.0, 9.0])

    def test_downsampling_stride_validation(self):
        with pytest.raises(ValueError, match="stride"):
            DownsamplingSink(stride=0)

    def test_npz_sink_streams_and_packages(self, tmp_path):
        path = tmp_path / "run.npz"
        sink = NpzStreamSink(path)
        sink.open(2, n_hint=3)
        rows = np.arange(10.0).reshape(5, 2)
        for k in range(5):  # exceeds the hint: exercises on-disk growth
            sink.append(float(k), rows[k])
        times, states = sink.finalize()
        np.testing.assert_array_equal(np.asarray(states), rows)
        data = np.load(path)
        np.testing.assert_array_equal(data["states"], rows)
        np.testing.assert_array_equal(data["times"], np.arange(5.0))
        # The workfile is kept for zero-copy reopening and must be
        # truncated to the written rows, not the grown capacity.
        np.testing.assert_array_equal(np.load(sink.workfile), rows)

    def test_npz_sink_rejects_other_suffixes(self, tmp_path):
        with pytest.raises(ValueError, match="npz"):
            NpzStreamSink(tmp_path / "run.csv")

    def test_make_sink_specs(self, tmp_path):
        assert isinstance(make_sink("memory"), MemorySink)
        ds = make_sink("downsample:8")
        assert isinstance(ds, DownsamplingSink) and ds.stride == 8
        nz = make_sink(f"npz:{tmp_path / 'x.npz'}")
        assert isinstance(nz, NpzStreamSink)
        with pytest.raises(ValueError, match="unknown sink"):
            make_sink("parquet:x")
        with pytest.raises(ValueError, match="stride"):
            make_sink("downsample:")

    def test_solver_with_downsampling_sink(self, mesh_system):
        opts = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)
        x0 = np.zeros(mesh_system.dim)
        dense = MatexSolver(mesh_system, opts).simulate(1e-9, x0=x0)
        sparse = MatexSolver(mesh_system, opts).simulate(
            1e-9, x0=x0, sink=DownsamplingSink(stride=3)
        )
        assert sparse.n_points < dense.n_points
        assert sparse.times[0] == dense.times[0]
        assert sparse.times[-1] == dense.times[-1]
        # Every retained point matches the dense run exactly.
        for t, x in zip(sparse.times, sparse.states):
            i = int(np.argmin(np.abs(dense.times - t)))
            np.testing.assert_array_equal(x, dense.states[i])

    def test_baseline_with_npz_sink(self, mesh_system, tmp_path):
        path = tmp_path / "tr.npz"
        x0 = np.zeros(mesh_system.dim)
        res = simulate_trapezoidal(
            mesh_system, 1e-11, 1e-9, x0=x0, sink=NpzStreamSink(path)
        )
        dense = simulate_trapezoidal(mesh_system, 1e-11, 1e-9, x0=x0)
        np.testing.assert_array_equal(np.asarray(res.states), dense.states)
        data = np.load(path)
        np.testing.assert_array_equal(data["states"], dense.states)
        # The streamed result stays memmap-backed — no in-process copy —
        # while the dense run holds the full block in RAM.
        assert res.states_nbytes == 0
        assert dense.states_nbytes == dense.states.nbytes > 0
        assert res.sink.path == path  # provenance through TransientResult


class TestSteppingLoop:
    def test_grid_truncation_on_none(self):
        stats = SolverStats()
        loop = SteppingLoop(1, stats)

        def advance(i, t, t_next, x):
            if i == 2:
                return None  # give up on the third step
            return x + 1.0

        times, states = loop.march_grid(
            np.arange(5.0), np.zeros(1), advance
        )
        np.testing.assert_array_equal(times, [0.0, 1.0, 2.0])
        assert states[-1][0] == 2.0
        assert stats.n_steps == 3  # the failed attempt is still counted

    def test_grid_zero_length_interval_recorded(self):
        stats = SolverStats()
        loop = SteppingLoop(1, stats)
        calls = []

        def advance(i, t, t_next, x):
            calls.append(i)
            return x + 1.0

        times, states = loop.march_grid(
            np.array([0.0, 1.0, 1.0, 2.0]), np.zeros(1), advance
        )
        assert calls == [0, 2]          # no advance over the zero interval
        assert stats.n_steps == 2
        assert len(times) == 4          # but the duplicate point is recorded
        assert states[1][0] == states[2][0]

    def test_grid_record_mask(self):
        stats = SolverStats()
        loop = SteppingLoop(1, stats)
        times, states = loop.march_grid(
            np.arange(6.0), np.zeros(1),
            lambda i, t, t1, x: x + 1.0,
            record=[0, 3, 5],
        )
        np.testing.assert_array_equal(times, [0.0, 3.0, 5.0])
        np.testing.assert_array_equal(states[:, 0], [0.0, 3.0, 5.0])
        assert stats.n_steps == 5
