"""Executor edge cases beyond the core distributed tests.

Covers the operational corners of the executor contract: exceptions
raised inside worker processes must surface to the caller, a one-worker
pool must be bit-identical to the serial emulation, and degenerate
(empty / single-group) schedules must behave.
"""

import numpy as np
import pytest

from repro.circuit import Netlist, Pulse, assemble
from repro.core import SolverOptions
from repro.core.decomposition import SourceGroup
from repro.dist import (
    MatexScheduler,
    MultiprocessExecutor,
    SerialExecutor,
    SimulationTask,
)

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)


def bad_column_task(system, t_end=1e-9):
    """A task whose group points at a non-existent input column."""
    return SimulationTask(
        task_id=0,
        group=SourceGroup(group_id=0, label="bad",
                          input_columns=(system.n_inputs + 5,)),
        t_end=t_end,
        global_points=tuple(system.global_transition_spots(t_end)),
    )


class TestExceptionPropagation:
    def test_multiprocess_propagates_worker_exception(self, mesh_system):
        ex = MultiprocessExecutor(mesh_system, OPTS, max_workers=2)
        with pytest.raises(IndexError):
            ex.run([bad_column_task(mesh_system)])

    def test_serial_propagates_worker_exception(self, mesh_system):
        ex = SerialExecutor(mesh_system, OPTS)
        with pytest.raises(IndexError):
            ex.run([bad_column_task(mesh_system)])

    def test_multiprocess_pool_usable_after_failure(self, mesh_system):
        """A failed run must not poison subsequent runs."""
        ex = MultiprocessExecutor(mesh_system, OPTS, max_workers=2)
        with pytest.raises(IndexError):
            ex.run([bad_column_task(mesh_system)])
        sched = MatexScheduler(mesh_system, OPTS, decomposition="bump")
        dres = sched.run(1e-9, executor=ex)
        assert dres.n_nodes >= 1


class TestSingleWorkerEquivalence:
    def test_one_worker_pool_matches_serial(self, mesh_system):
        sched = MatexScheduler(mesh_system, OPTS, decomposition="bump")
        serial = sched.run(1e-9)
        mp1 = sched.run(
            1e-9, executor=MultiprocessExecutor(mesh_system, OPTS,
                                                max_workers=1)
        )
        assert mp1.n_nodes == serial.n_nodes
        np.testing.assert_allclose(mp1.result.states, serial.result.states,
                                   rtol=1e-12, atol=1e-15)
        assert (mp1.total_substitution_pairs
                == serial.total_substitution_pairs)

    def test_max_workers_validation(self, mesh_system):
        with pytest.raises(ValueError, match="max_workers"):
            MultiprocessExecutor(mesh_system, OPTS, max_workers=0)


class TestDegenerateSchedules:
    def test_empty_task_list_serial(self, mesh_system):
        assert SerialExecutor(mesh_system, OPTS).run([]) == []

    def test_empty_task_list_multiprocess(self, mesh_system):
        ex = MultiprocessExecutor(mesh_system, OPTS, max_workers=2)
        assert ex.run([]) == []

    def test_empty_run_builds_no_worker(self, mesh_system):
        """The serial emulation must not pay a factorisation for nothing."""
        ex = SerialExecutor(mesh_system, OPTS)
        ex.run([])
        assert ex._worker is None

    @pytest.fixture
    def single_source_system(self):
        net = Netlist("one-source")
        for i in range(4):
            net.add_resistor(f"R{i}", "0" if i == 0 else f"n{i}",
                             f"n{i + 1}", 1.0)
            net.add_capacitor(f"C{i}", f"n{i + 1}", "0", 1e-13)
        net.add_current_source(
            "I0", "n4", "0", Pulse(0.0, 1e-3, 1e-10, 2e-11, 1e-10, 2e-11)
        )
        return assemble(net)

    def test_single_group_schedule(self, single_source_system):
        from repro.core import MatexSolver

        s = single_source_system
        sched = MatexScheduler(s, OPTS, decomposition="bump")
        assert len(sched.groups()) == 1
        dres = sched.run(1e-9)
        assert dres.n_nodes == 1
        assert dres.total_substitution_pairs == dres.max_node_substitution_pairs
        single = MatexSolver(s, OPTS).simulate(1e-9)
        assert np.max(np.abs(dres.result.states - single.states)) < 1e-8

    def test_single_group_multiprocess(self, single_source_system):
        s = single_source_system
        sched = MatexScheduler(s, OPTS, decomposition="bump")
        serial = sched.run(1e-9)
        mp = sched.run(
            1e-9, executor=MultiprocessExecutor(s, OPTS, max_workers=2)
        )
        np.testing.assert_allclose(mp.result.states, serial.result.states,
                                   rtol=1e-12, atol=1e-15)
