"""Distributed robustness: killed workers, per-process caches, empty runs.

The kill test works by injecting a waveform override whose evaluation
SIGKILLs the worker process — the task itself is the murder weapon, so
the test exercises the real failure path (a node dying mid-simulation)
rather than a mocked pool.
"""

import os
import pickle
import signal
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.circuit import Pulse
from repro.core import SolverOptions, TransientResult
from repro.core.decomposition import SourceGroup
from repro.core.stats import SolverStats
from repro.dist import (
    DistributedResult,
    MatexScheduler,
    MultiprocessExecutor,
    SerialExecutor,
    SimulationTask,
)
from repro.dist.messages import NodeResult
from repro.dist.shm import (
    ShmArrayRef,
    ShmAttachError,
    cleanup_segments,
    from_shared,
    new_segment_prefix,
    shm_available,
    to_shared,
)
from repro.linalg.lu import FACTORIZATION_CACHE

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-8)


class SuicidalPulse(Pulse):
    """A pulse whose evaluation kills the evaluating process.

    Module-level so it pickles by reference into worker processes.
    """

    def values_array(self, times):
        os.kill(os.getpid(), signal.SIGKILL)

    def value(self, t):
        os.kill(os.getpid(), signal.SIGKILL)


def killer_task(system, t_end=1e-9):
    """A task whose input evaluation SIGKILLs the worker mid-run."""
    bomb = SuicidalPulse(0.0, 1e-3, 1e-10, 2e-11, 1e-10, 2e-11)
    return SimulationTask(
        task_id=0,
        group=SourceGroup(
            group_id=0, label="bomb", input_columns=(0,),
            waveform_overrides=((0, bomb),),
        ),
        t_end=t_end,
        global_points=tuple(system.global_transition_spots(t_end)),
    )


def good_task(system, task_id=0, column=0, t_end=1e-9):
    return SimulationTask(
        task_id=task_id,
        group=SourceGroup(group_id=task_id, label="ok",
                          input_columns=(column,)),
        t_end=t_end,
        global_points=tuple(system.global_transition_spots(t_end)),
    )


class TestWorkerKilledMidTask:
    def test_kill_surfaces_as_broken_pool(self, mesh_system):
        ex = MultiprocessExecutor(mesh_system, OPTS, max_workers=2)
        with pytest.raises(BrokenProcessPool):
            ex.run([killer_task(mesh_system)])

    def test_executor_usable_after_kill(self, mesh_system):
        """Pools are per-run, so a massacre must not poison the next run."""
        ex = MultiprocessExecutor(mesh_system, OPTS, max_workers=2)
        with pytest.raises(BrokenProcessPool):
            ex.run([killer_task(mesh_system)])
        results = ex.run([good_task(mesh_system, 0, 0),
                          good_task(mesh_system, 1, 1)])
        assert [r.task_id for r in results] == [0, 1]
        assert all(np.all(np.isfinite(r.states)) for r in results)


def shm_result(task_id: int, prefix: str) -> NodeResult:
    """A small NodeResult whose states live in a fresh shared segment."""
    return to_shared(
        NodeResult(
            task_id=task_id, group_id=task_id, label="shm",
            times=np.array([0.0, 1e-10]),
            states=np.arange(8.0).reshape(2, 4) + task_id,
        ),
        prefix,
    )


@pytest.mark.skipif(not shm_available(), reason="POSIX shared memory needed")
class TestShmDoubleAttach:
    """A ShmArrayRef is single-use: re-delivery must fail loudly, not leak.

    The retry-after-pool-failure path can hand the parent the same
    pickled ref twice; the first attach unlinks the segment name, so the
    second used to crash with a bare ``FileNotFoundError`` deep inside
    ``shared_memory`` — and left every *other* segment of the run alive.
    """

    def test_rehydrated_result_is_idempotent(self):
        prefix = new_segment_prefix()
        try:
            shared = shm_result(0, prefix)
            first = from_shared(shared)
            again = from_shared(first)  # plain-array states: no-op
            assert again is first
            np.testing.assert_array_equal(
                first.states, np.arange(8.0).reshape(2, 4)
            )
        finally:
            cleanup_segments(prefix)

    def test_second_attach_raises_clear_error(self):
        prefix = new_segment_prefix()
        try:
            shared = shm_result(0, prefix)
            assert isinstance(shared.states, ShmArrayRef)
            from_shared(shared)
            with pytest.raises(ShmAttachError,
                               match="cannot be rehydrated twice"):
                from_shared(shared)
        finally:
            cleanup_segments(prefix)

    def test_attach_failure_sweeps_sibling_segments(self):
        """A failed attach must not strand the run's other segments."""
        prefix = new_segment_prefix()
        try:
            dup = shm_result(0, prefix)
            sibling = shm_result(1, prefix)
            assert dup.states.run_prefix() == prefix
            from_shared(dup)
            with pytest.raises(ShmAttachError):
                from_shared(dup)  # sweeps the whole prefix
            # The sibling's segment was reclaimed by the sweep.
            with pytest.raises(ShmAttachError):
                from_shared(sibling)
        finally:
            cleanup_segments(prefix)


class TestCacheProcessScope:
    def test_serial_run_shares_the_scheduler_cache(self, mesh_system):
        """In-process workers hit the cache the scheduler's DC primed."""
        FACTORIZATION_CACHE.clear()
        dres = MatexScheduler(mesh_system, OPTS).run(1e-9)
        assert dres.factor_cache_hits >= 1
        # DC's G + the worker's G are one entry; C+γG is the other.
        assert len(FACTORIZATION_CACHE) == 2

    def test_multiprocess_workers_keep_their_own_cache(self, mesh_system):
        """Child factorisations never land in the parent's cache."""
        FACTORIZATION_CACHE.clear()
        dres = MatexScheduler(mesh_system, OPTS).run(
            1e-9,
            executor=MultiprocessExecutor(mesh_system, OPTS, max_workers=2),
        )
        # Parent cache only ever saw the scheduler's DC factorisation.
        assert len(FACTORIZATION_CACHE) == 1
        hits, misses = FACTORIZATION_CACHE.counters()
        assert misses == 1
        # Worker-side traffic is still reported — through the node stats.
        assert (dres.factor_cache_misses
                == 1 + sum(s.n_factor_cache_misses for s in dres.node_stats))

    def test_serial_warm_run_refactors_nothing(self, mesh_system):
        FACTORIZATION_CACHE.clear()
        sched = MatexScheduler(mesh_system, OPTS)
        sched.run(1e-9)
        warm = sched.run(1e-9)  # new SerialExecutor, new NodeWorker
        assert warm.factor_cache_misses == 0
        assert warm.factor_cache_hits >= 3  # DC G + worker G + C+γG


class TestEmptyDistributedResult:
    def _empty(self, system) -> DistributedResult:
        trivial = TransientResult(
            system=system,
            times=np.array([0.0]),
            states=np.zeros((1, system.dim)),
            stats=SolverStats(),
            method="empty",
        )
        return DistributedResult(
            result=trivial, n_nodes=0, node_stats=(),
            dc_seconds=1e-3, factor_seconds=0.0, superpose_seconds=0.0,
        )

    def test_empty_schedule_roundtrips_through_pickle(self, mesh_system):
        dres = self._empty(mesh_system)
        clone = pickle.loads(pickle.dumps(dres))
        assert clone.n_nodes == 0
        assert clone.node_stats == ()
        np.testing.assert_array_equal(clone.result.times, [0.0])

    def test_empty_schedule_properties_are_safe(self, mesh_system):
        dres = self._empty(mesh_system)
        assert dres.tr_matex == 0.0
        assert dres.tr_total == pytest.approx(1e-3)
        assert dres.total_substitution_pairs == 0
        assert dres.max_node_substitution_pairs == 0
        assert dres.node_transient_seconds == []

    def test_empty_task_lists_still_return_empty(self, mesh_system):
        assert SerialExecutor(mesh_system, OPTS).run([]) == []
        ex = MultiprocessExecutor(mesh_system, OPTS, max_workers=2)
        assert ex.run([]) == []
