"""Unit tests for LTS/GTS/Snapshot schedules (paper Sec. 3.1)."""

import pytest

from repro.core import TransitionSchedule, build_schedule


class TestFullSystemSchedule:
    def test_all_points_are_lts_without_decomposition(self, small_pdn_system):
        sched = build_schedule(small_pdn_system, 1e-9)
        assert all(sched.is_lts)
        assert sched.points[0] == 0.0
        assert sched.points[-1] == 1e-9

    def test_t_end_validation(self, small_pdn_system):
        with pytest.raises(ValueError):
            build_schedule(small_pdn_system, 0.0)


class TestDecomposedSchedule:
    def test_local_flags_match_own_waveform(self, small_pdn_system):
        s = small_pdn_system
        # Input 0 = I0 (delay 1e-10); input 1 = I1 (delay 2e-10).
        sched = build_schedule(s, 1e-9, local_inputs=(0,))
        own = set(s.local_transition_spots(0, 1e-9))
        for t, is_lts in zip(sched.points, sched.is_lts):
            if t == 0.0:
                assert is_lts  # initial basis always generated
            elif is_lts:
                assert any(abs(t - o) <= 1e-9 * max(t, 1e-30) for o in own)

    def test_snapshots_are_other_groups_spots(self, small_pdn_system):
        s = small_pdn_system
        sched0 = build_schedule(s, 1e-9, local_inputs=(0,))
        sched1 = build_schedule(s, 1e-9, local_inputs=(1,))
        # Grids identical, flags complementary except t=0 and t_end.
        assert sched0.points == sched1.points
        interior = list(zip(sched0.points, sched0.is_lts, sched1.is_lts))[1:-1]
        for t, a, b in interior:
            assert a != b, f"point {t} flagged LTS for both singleton groups"

    def test_counts(self, small_pdn_system):
        s = small_pdn_system
        sched = build_schedule(s, 1e-9, local_inputs=(0,))
        assert sched.n_points == len(sched.points)
        assert sched.n_lts + sched.n_snapshots == sched.n_points
        # I0 has 5 LTS in range (0 + 4 bump corners); t=0 overlaps.
        assert sched.n_lts == 5

    def test_shared_global_points(self, small_pdn_system):
        s = small_pdn_system
        gts = s.global_transition_spots(1e-9)
        a = build_schedule(s, 1e-9, local_inputs=(0,), global_points=gts)
        b = build_schedule(s, 1e-9, local_inputs=(1,), global_points=gts)
        assert a.points == b.points

    def test_global_points_clipped_and_padded(self, small_pdn_system):
        sched = build_schedule(
            small_pdn_system, 1e-9,
            local_inputs=(0,),
            global_points=[2e-10, 5e-10, 2.0],  # 2.0 out of range
        )
        assert sched.points[0] == 0.0
        assert sched.points[-1] == 1e-9
        assert 2.0 not in sched.points


class TestScheduleContainer:
    def test_segments_triples(self):
        sched = TransitionSchedule(
            points=(0.0, 1.0, 2.0), is_lts=(True, False, True), t_end=2.0
        )
        assert sched.segments() == [(0.0, 1.0, True), (1.0, 2.0, False)]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TransitionSchedule(points=(0.0,), is_lts=(True, False), t_end=1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TransitionSchedule(points=(), is_lts=(), t_end=1.0)
