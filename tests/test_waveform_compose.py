"""Waveform.scaled / MNASystem.rebind_sources composition edge cases.

The reduced-order input path (``ReducedModel.input_matrix``) and the
scenario machinery both lean on two contracts:

* ``scaled`` multiplies *values* only — the time geometry (transition
  spots, constancy up to a zero factor) never moves, and scalings
  compose associatively up to the float op order actually performed;
* ``rebind_sources`` is purely functional — chained rebinds equal one
  rebind with the composed waveform, bit-for-bit, and never re-stamp
  the matrices.
"""

import numpy as np
import pytest

from repro.circuit import DC, PWL, Pulse, assemble

from tests.conftest import build_multi_source_mesh

TIMES = np.linspace(0.0, 5e-10, 11)

WAVEFORMS = [
    DC(2e-3),
    PWL([(0.0, 0.0), (1e-10, 1e-3), (3e-10, 5e-4)]),
    Pulse(1e-3, 2.5e-3, 1e-10, 2e-11, 1e-10, 3e-11),
]


class TestZeroScaling:
    @pytest.mark.parametrize("wave", WAVEFORMS)
    def test_zero_factor_zeroes_every_value(self, wave):
        assert np.all(wave.scaled(0.0).values_array(TIMES) == 0.0)

    def test_zero_scaled_pulse_keeps_spots_but_turns_constant(self):
        """Pulse geometry is timing-derived: spots survive a zero
        factor, but constancy flips — which is exactly why a compiled
        plan rejects scenarios that mute a pulse (``Session._validate``
        checks constancy) and why the random scenario generator keeps
        its factors strictly positive."""
        pulse = Pulse(1e-3, 2.5e-3, 1e-10, 2e-11, 1e-10, 3e-11)
        zero = pulse.scaled(0.0)
        assert zero.transition_spots(1e-9) == pulse.transition_spots(1e-9)
        assert not pulse.is_constant()
        assert zero.is_constant()

    def test_zero_scaled_pwl_collapses_spots(self):
        """PWL geometry is *slope*-derived: an all-zero PWL has no
        slope changes left, so its transition spots collapse — zero
        scalings are NOT grid-preserving for PWL sources."""
        pwl = PWL([(0.0, 0.0), (1e-10, 1e-3), (3e-10, 5e-4)])
        assert pwl.scaled(0.0).transition_spots(1e-9) == [0.0]
        # Nonzero scalings preserve the grid — the Scenario contract.
        assert (pwl.scaled(0.5).transition_spots(1e-9)
                == pwl.transition_spots(1e-9))

    def test_zero_scaled_dc_stays_dc(self):
        assert DC(2e-3).scaled(0.0) == DC(0.0)


class TestScaledOfScaled:
    def test_composition_equals_direct_construction_bitwise(self):
        """``scaled(a).scaled(b)`` == the directly constructed waveform
        whose values were multiplied ``(v*a)*b`` — sequentially, NOT
        ``v*(a*b)``: float multiplication is not associative, and the
        pinned contract is the op order the scenario path performs.
        Frozen-dataclass equality compares fields, i.e. float-bitwise.
        """
        a, b = 0.3, 0.7
        pulse = Pulse(1e-3, 2.5e-3, 1e-10, 2e-11, 1e-10, 3e-11)
        assert pulse.scaled(a).scaled(b) == Pulse(
            (pulse.v1 * a) * b, (pulse.v2 * a) * b,
            1e-10, 2e-11, 1e-10, 3e-11,
        )
        pwl = PWL([(0.0, 0.0), (1e-10, 1e-3), (3e-10, 5e-4)])
        assert pwl.scaled(a).scaled(b) == PWL(
            [(t, (v * a) * b) for t, v in pwl.points]
        )
        assert DC(2e-3).scaled(a).scaled(b) == DC((2e-3 * a) * b)

    @pytest.mark.parametrize("wave", WAVEFORMS)
    def test_composition_values_and_geometry(self, wave):
        a, b = 0.3, 0.7
        twice = wave.scaled(a).scaled(b)
        np.testing.assert_allclose(
            twice.values_array(TIMES),
            (wave.values_array(TIMES) * a) * b,
            rtol=1e-15, atol=0.0,
        )
        assert (twice.transition_spots(1e-9)
                == wave.transition_spots(1e-9))

    def test_scaled_of_scaled_type_preserved(self):
        for wave, cls in zip(WAVEFORMS, (DC, PWL, Pulse)):
            assert isinstance(wave.scaled(0.5).scaled(2.0), cls)


class TestRebindAfterRebind:
    def test_chained_rebind_equals_direct_construction(self):
        """Two rebinds == one rebind with the composed waveform, bitwise."""
        system = assemble(build_multi_source_mesh())
        chained = system.rebind_sources(
            scales={0: 1.2}
        ).rebind_sources(scales={0: 1.1})
        direct = system.rebind_sources(
            overrides={0: system.waveforms[0].scaled(1.2).scaled(1.1)}
        )
        # Frozen waveform dataclasses compare by field — float-bitwise.
        assert chained.waveforms == direct.waveforms
        for t in (0.0, 1.3e-10, 4.7e-10):
            np.testing.assert_array_equal(
                chained.bu(t), direct.bu(t)
            )

    def test_rebind_never_restamps_matrices(self):
        system = assemble(build_multi_source_mesh())
        rebound = system.rebind_sources(
            scales={0: 1.5}
        ).rebind_sources(overrides={1: DC(1e-3)})
        assert rebound.C is system.C
        assert rebound.G is system.G
        assert rebound.B is system.B

    def test_override_then_scale_in_one_rebind(self):
        """Within one rebind, overrides apply before scales."""
        system = assemble(build_multi_source_mesh())
        wave = Pulse(0.0, 4e-3, 1e-10, 5e-11, 2e-10, 5e-11)
        combined = system.rebind_sources(
            overrides={0: wave}, scales={0: 0.5}
        )
        assert combined.waveforms[0] == wave.scaled(0.5)

    def test_rebind_leaves_original_untouched(self):
        system = assemble(build_multi_source_mesh())
        before = system.waveforms
        system.rebind_sources(scales={0: 2.0})
        assert system.waveforms == before
