import re

from setuptools import find_packages, setup

with open("README.md", encoding="utf-8") as f:
    long_description = f.read()

with open("src/repro/__init__.py", encoding="utf-8") as f:
    version = re.search(r'^__version__ = "([^"]+)"', f.read(), re.M).group(1)

setup(
    name="matex-repro",
    version=version,
    description=(
        "MATEX: distributed matrix-exponential transient simulation of "
        "power distribution networks (reproduction of Zhuang et al., "
        "DAC 2014)"
    ),
    long_description=long_description,
    long_description_content_type="text/markdown",
    author="MATEX reproduction contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
    ],
    extras_require={
        "test": [
            "pytest>=7",
            "pytest-benchmark>=4",
            "hypothesis>=6",
        ],
    },
    entry_points={
        "console_scripts": [
            "matex=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Electronic Design Automation (EDA)",
    ],
)
