"""Benchmark: paper Fig. 5 — rational-Krylov error vs (h, m).

Regenerates the error surface into ``results/fig5.txt`` and asserts the
paper's key monotonicity (error falls as h grows at fixed m — the
property that makes snapshot reuse safe).  Also benchmarks the Arnoldi
basis construction itself.
"""

import numpy as np
import pytest

from repro.circuit import assemble
from repro.experiments.fig5 import run_fig5
from repro.linalg import RationalKrylov
from repro.pdn import stiff_rc_mesh


@pytest.fixture(scope="module")
def mesh():
    return assemble(stiff_rc_mesh(10, 10, fast_ratio=20.0, slow_ratio=1e4,
                                  n_sources=2))


def test_rational_basis_construction(benchmark, mesh):
    rng = np.random.default_rng(0)
    v = rng.normal(size=mesh.dim)
    op = RationalKrylov(mesh.C, mesh.G, gamma=1e-11)

    basis = benchmark(lambda: op.build_basis(v, 1e-11, tol=1e-9, m_max=40))
    assert basis.m >= 2


def test_basis_reuse_evaluation(benchmark, mesh):
    """The Alg. 2 snapshot step: re-evaluate a built basis at new h."""
    rng = np.random.default_rng(0)
    v = rng.normal(size=mesh.dim)
    op = RationalKrylov(mesh.C, mesh.G, gamma=1e-11)
    basis = op.build_basis(v, 1e-11, tol=1e-9, m_max=40)
    basis.evaluate(1e-11)  # warm the eigen cache

    benchmark(lambda: basis.evaluate(7e-11))


def test_generate_fig5(benchmark, record_table):
    def run():
        return run_fig5()

    table, points = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("fig5", table)

    # Error decreases with h at every fixed m (compare the extremes,
    # averaged in log space to be robust to plateaus at the noise floor).
    for m in sorted({p.m for p in points}):
        errs = [p.error for p in points if p.m == m]
        assert errs[-1] <= errs[0]
