"""Industrial-scale netlist ingestion benchmark (streaming parser).

Measures what the ibmpg-style streaming path exists for:

* **parse throughput** — cards/second from deck to assembled
  :class:`MNASystem` (both streaming passes, stamping included),
* **bounded memory** — peak RSS is recorded into the results JSON by
  ``conftest.py``; the streamed path must not materialise per-element
  Python objects, and the recorded RSS documents it,
* **bit-identity** — the streamed system's CSC arrays must be
  byte-for-byte equal to the in-memory generator path,
* **end-to-end** — the deck runs through ``repro run --netlist`` with
  the distributed executor.

The default grid (100×100 → 10k nodes, ~40k cards) keeps CI smoke fast.
Set ``INGEST_BENCH_FULL=1`` to also run the ≥100k-node acceptance case
(320×320, ~410k cards) — the scale of the larger IBM power grid
transient benchmarks.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.circuit import assemble, ingest_file
from repro.cli import main as cli_main
from repro.pdn import PdnConfig, WorkloadSpec, synthesize_ibmpg

FULL = os.environ.get("INGEST_BENCH_FULL", "") not in ("", "0")


def _isolated_rss_kb(stmt: str) -> int:
    """Peak RSS (KiB) of ``stmt`` run in a fresh interpreter.

    The bench process itself also holds the in-memory reference system
    for the bit-identity assertion, so its own high-water mark says
    nothing about the *streamed* path; a subprocess isolates it.
    """
    code = (
        "import resource, sys\n"
        f"{stmt}\n"
        # /proc VmHWM resets on exec; ru_maxrss inherits the *parent's*
        # resident set across fork and would report this bench process.
        "try:\n"
        "    with open('/proc/self/status') as f:\n"
        "        rss = next(int(line.split()[1]) for line in f\n"
        "                   if line.startswith('VmHWM'))\n"
        "except OSError:\n"
        "    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss\n"
        "    if sys.platform == 'darwin':\n"
        "        rss //= 1024\n"
        "print(rss)\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        check=True,
    )
    return int(out.stdout.split()[-1])


def _deck(tmp_path, rows: int, cols: int, n_sources: int = 40,
          n_shapes: int = 8):
    path = tmp_path / f"pg_{rows}x{cols}.spice"
    net = synthesize_ibmpg(
        path,
        PdnConfig(rows=rows, cols=cols),
        WorkloadSpec(n_sources=n_sources, n_shapes=n_shapes, t_end=1e-9,
                     time_grid_points=16),
    )
    return path, net


def _assert_bit_identical(ref, streamed):
    for name in ("G", "C", "B"):
        a, b = getattr(ref, name), getattr(streamed, name)
        np.testing.assert_array_equal(a.indptr, b.indptr, err_msg=name)
        np.testing.assert_array_equal(a.indices, b.indices, err_msg=name)
        np.testing.assert_array_equal(a.data, b.data, err_msg=name)


def test_ingest_10k_nodes(tmp_path, record_metric):
    """Streaming-parse a 10k-node deck; assert bit-identity."""
    path, net = _deck(tmp_path, 100, 100)
    res = ingest_file(path)
    stats = res.stats
    assert stats.n_nodes >= 10_000
    _assert_bit_identical(assemble(net), res.system)
    record_metric("n_nodes", stats.n_nodes)
    record_metric("n_cards", stats.n_cards)
    record_metric("parse_seconds", round(stats.parse_seconds, 4))
    record_metric("cards_per_second",
                  round(stats.n_cards / max(stats.parse_seconds, 1e-9)))
    # Bounded-memory evidence, in its own interpreter so the number is
    # not polluted by this test's reference system.  (At 10k nodes both
    # parser paths are interpreter-baseline dominated; the full 100k
    # test records the streamed/object contrast where it matters.)
    record_metric(
        "streamed_path_rss_kb",
        _isolated_rss_kb(
            f"from repro.circuit import ingest_file\n"
            f"ingest_file({str(path)!r})"
        ),
    )


def test_run_cli_distributed_end_to_end(tmp_path, record_metric):
    """The acceptance path: deck -> repro run --netlist --distributed."""
    path, _ = _deck(tmp_path, 40, 40, n_sources=12, n_shapes=4)
    code = cli_main(["run", "--netlist", str(path),
                     "--distributed", "--batch", "auto"])
    assert code == 0
    record_metric("cli_exit", code)


@pytest.mark.skipif(not FULL, reason="set INGEST_BENCH_FULL=1 for the "
                                     ">=100k-node acceptance case")
def test_ingest_100k_nodes_full(tmp_path, record_metric):
    """The >=100k-node acceptance criterion, RSS recorded by conftest."""
    path, net = _deck(tmp_path, 320, 320, n_sources=60, n_shapes=6)
    res = ingest_file(path)
    stats = res.stats
    assert stats.n_nodes >= 100_000
    _assert_bit_identical(assemble(net), res.system)
    record_metric("n_nodes", stats.n_nodes)
    record_metric("n_cards", stats.n_cards)
    record_metric("parse_seconds", round(stats.parse_seconds, 4))
    record_metric("cards_per_second",
                  round(stats.n_cards / max(stats.parse_seconds, 1e-9)))
    record_metric(
        "streamed_path_rss_kb",
        _isolated_rss_kb(
            f"from repro.circuit import ingest_file\n"
            f"ingest_file({str(path)!r})"
        ),
    )
    record_metric(
        "object_path_rss_kb",
        _isolated_rss_kb(
            f"from repro.circuit import assemble, parse_file\n"
            f"assemble(parse_file({str(path)!r}))"
        ),
    )
    # End-to-end through the distributed executor on the same deck.
    code = cli_main(["run", "--netlist", str(path),
                     "--distributed", "--batch", "auto"])
    assert code == 0
