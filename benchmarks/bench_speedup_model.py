"""Benchmark: the Sec. 3.4 speedup model (Eqs. 11-12) vs measurement.

Sweeps the node count on pg1t and records predicted-vs-measured Spdp4
into ``results/speedup_model.txt``.  The model and the measurement must
agree on the *trend*: more nodes → fewer per-node LTS → higher speedup,
saturating at the snapshot-evaluation floor.
"""

from repro.experiments.speedup_model import run_speedup_model


def test_speedup_model_sweep(benchmark, record_table):
    def run():
        return run_speedup_model(case="pg1t", node_counts=[1, 5, 25, 100])

    table, samples = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("speedup_model", table)

    assert [s.n_nodes for s in samples] == [1, 5, 25, 100]
    # Per-node LTS count must shrink as nodes grow.
    ks = [s.k_max for s in samples]
    assert ks[0] > ks[-1]
    # Measured speedup improves with decomposition.
    assert samples[-1].measured_spdp4 > samples[0].measured_spdp4
    # The Eq. 12 prediction lands within a small factor of measurement
    # at the natural decomposition (constants are microbenchmarked, so
    # agreement is approximate).
    final = samples[-1]
    ratio = final.predicted_spdp4 / final.measured_spdp4
    assert 0.2 < ratio < 5.0
