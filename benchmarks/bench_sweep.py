"""Benchmark: scenario sweeps through compiled plans (repro.plan).

The headline claim of the plan → compile → execute re-layering: an
N-scenario what-if sweep over the Table-3 PDN through one compiled
:class:`~repro.plan.SimulationPlan` + :class:`~repro.plan.Session` runs
**at least 2× faster** than N independent ``MatexScheduler.run`` calls
(each as a separate process would run it: cleared factorisation cache,
fresh scheduler, fresh schedules) — while every scenario's superposed
trajectory stays **bit-for-bit identical** to its independent cold run.

Recorded metrics:

* ``cold_wall_seconds``   — Σ over N default (per-node) cold runs,
* ``cold_batched_wall_seconds`` — Σ over N ``batch="auto"`` cold runs
  (the strongest pre-plan single-run path, for honesty),
* ``warm_wall_seconds``   — compile once + one stacked session sweep,
* the derived speedups.  Peak RSS rides along via ``conftest.py``.
"""

import time

from repro.core import SolverOptions
from repro.dist import MatexScheduler
from repro.linalg.lu import FACTORIZATION_CACHE
from repro.pdn import load_pattern_scenarios
from repro.plan import Session, SimulationPlan

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-6)

#: The acceptance-criteria sweep width (8 what-if load patterns).
N_SCENARIOS = 8


def _cold_runs(system, scenarios, t_end, **sched_kwargs):
    """N independent runs, each with a process-cold factor cache."""
    walls, states = [], []
    for sc in scenarios:
        bound = sc.bind(system)
        FACTORIZATION_CACHE.clear()
        t0 = time.perf_counter()
        dres = MatexScheduler(bound, OPTS, **sched_kwargs).run(t_end)
        walls.append(time.perf_counter() - t0)
        states.append(dres.result.states)
    return walls, states


def test_sweep_vs_cold_runs(pg1t, record_metric):
    system, case = pg1t
    scenarios = load_pattern_scenarios(
        system, n=N_SCENARIOS, seed=2014, spread=0.5
    )

    # N independent cold runs — the pre-plan way users sweep scenarios.
    cold_walls, cold_states = _cold_runs(
        system, scenarios, case.t_end
    )
    batched_walls, batched_states = _cold_runs(
        system, scenarios, case.t_end, batch="auto"
    )

    # Warm sweep: compile once, execute all scenarios in one session
    # (one stacked lockstep march over 8 x 100 node tasks).  The
    # cleared cache charges the sweep its own factorisations too.
    FACTORIZATION_CACHE.clear()
    t0 = time.perf_counter()
    compiled = SimulationPlan(system, OPTS, t_end=case.t_end).compile()
    with Session(compiled) as session:
        results = session.sweep(scenarios, stack="auto")
    warm_wall = time.perf_counter() - t0

    # Parity: every scenario bit-identical to both cold variants.
    for ref, blk, res in zip(cold_states, batched_states, results):
        assert res.result.states.tobytes() == ref.tobytes()
        assert blk.tobytes() == ref.tobytes()

    cold_wall = sum(cold_walls)
    cold_batched_wall = sum(batched_walls)
    speedup = cold_wall / warm_wall
    speedup_vs_batched = cold_batched_wall / warm_wall
    record_metric("n_scenarios", N_SCENARIOS)
    record_metric("n_nodes", results[0].n_nodes)
    record_metric("cold_wall_seconds", cold_wall)
    record_metric("cold_batched_wall_seconds", cold_batched_wall)
    record_metric("warm_wall_seconds", warm_wall)
    record_metric("sweep_speedup", speedup)
    record_metric("sweep_speedup_vs_batched_cold", speedup_vs_batched)
    record_metric(
        "warm_ms_per_scenario", warm_wall / N_SCENARIOS * 1e3
    )

    # Acceptance criterion: >= 2x vs N independent scheduler runs.
    assert speedup >= 2.0, (
        f"sweep speedup {speedup:.2f}x < 2x "
        f"(cold {cold_wall:.2f}s, warm {warm_wall:.2f}s)"
    )


def test_compile_amortisation_breakdown(pg1t, record_metric):
    """Where the sweep savings come from: the per-run serial part.

    A cold run pays decomposition + schedules + DC + factorisation
    before any node marches; a warm session pays it once at compile.
    """
    system, case = pg1t
    FACTORIZATION_CACHE.clear()
    t0 = time.perf_counter()
    compiled = SimulationPlan(system, OPTS, t_end=case.t_end).compile()
    cold_compile = time.perf_counter() - t0

    t0 = time.perf_counter()
    SimulationPlan(system, OPTS, t_end=case.t_end).compile()
    warm_compile = time.perf_counter() - t0

    record_metric("cold_compile_seconds", cold_compile)
    record_metric("warm_compile_seconds", warm_compile)
    record_metric("n_nodes", compiled.n_nodes)
    record_metric("n_gts_points", len(compiled.global_points))
    # The compile itself is cache-amortised: a warm recompile factors
    # nothing (only schedules + one DC substitution pair remain).
    assert compiled.n_nodes == 100
    stats = FACTORIZATION_CACHE.stats()
    assert stats["misses"] == 2  # G + pencil, once across both compiles
