"""Perf-regression gate: compare fresh benchmark JSONs to baselines.

Every benchmark module writes ``benchmarks/results/<module>.json`` with
one entry per test (wall seconds + metrics + peak RSS — see
``conftest.py``).  CI snapshots the committed baselines, re-runs the
gated benches, and calls this script::

    python benchmarks/check_perf_regression.py BASELINE_DIR FRESH_DIR \
        --modules bench_kernels bench_table3_distributed --factor 1.5

A test regresses when its fresh wall time exceeds ``factor`` times the
committed baseline.  Tests without a baseline entry (newly added) and
sub-threshold timings (< ``--min-seconds``, pure noise) are reported
but never fail the gate.  The factor can be overridden with the
``PERF_GATE_FACTOR`` environment variable (e.g. for slow CI runners).

On top of the relative wall-time comparison, :data:`METRIC_FLOORS`
gates a handful of *recorded metrics* against absolute floors taken
from the fresh run only: ratios like the batched-march speedup or the
level-kernel multiple are self-normalising (both sides measured on the
same machine in the same process), so unlike wall times they can be
held to a hard number regardless of how slow the runner is.
:data:`METRIC_CEILINGS` is the mirror image for metrics that must stay
*small* — the reduced-order tier's fallback rate (a ratio), and one
deliberately lenient absolute ceiling on ``warm_ms_per_scenario`` that
catches only catastrophic slowdowns, not runner jitter.  A gated
metric missing from the fresh run fails the gate — silently dropping
the measurement must not pass as green.

Exit status: 0 when no gated test regressed, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_MODULES = (
    "bench_kernels",
    "bench_table3_distributed",
    "bench_ingest",
    "bench_sweep",
    "bench_rom",
)

#: Absolute floors on recorded metrics, checked against the FRESH run:
#: ``{module: {test: {metric: floor}}}``.  These are machine-relative
#: ratios, so a hard floor is meaningful on any runner.  They mirror
#: the in-bench asserts (belt and braces: the gate also catches a
#: baseline regenerated from a run whose asserts were skipped).
METRIC_FLOORS: dict[str, dict[str, dict[str, float]]] = {
    "bench_table3_distributed": {
        "test_block_batched_march": {"batched_speedup": 3.0},
    },
    "bench_kernels": {
        "test_multi_rhs_substitution_batched": {"kernel_speedup": 1.5},
    },
    "bench_rom": {
        "test_rom_sweep_speedup": {"rom_speedup": 10.0},
    },
}

#: Absolute ceilings on recorded metrics, checked against the FRESH
#: run (same shape as :data:`METRIC_FLOORS`).  ``fallback_rate`` is a
#: ratio and therefore machine-independent; the
#: ``warm_ms_per_scenario`` ceiling is deliberately ~an order of
#: magnitude above the measured value so it only trips on a
#: catastrophic regression of the warm sweep path, never on a slow
#: runner.
METRIC_CEILINGS: dict[str, dict[str, dict[str, float]]] = {
    "bench_rom": {
        "test_rom_sweep_speedup": {"fallback_rate": 0.05},
    },
    "bench_sweep": {
        "test_sweep_vs_cold_runs": {"warm_ms_per_scenario": 5000.0},
    },
}


def load_results(path: Path) -> dict[str, dict]:
    """``{test name -> entry}`` from one module's results JSON."""
    payload = json.loads(path.read_text())
    return {t["name"]: t for t in payload.get("tests", [])}


def compare_module(
    module: str,
    baseline_dir: Path,
    fresh_dir: Path,
    factor: float,
    min_seconds: float,
) -> list[str]:
    """Return the list of regression messages for one module."""
    baseline_path = baseline_dir / f"{module}.json"
    fresh_path = fresh_dir / f"{module}.json"
    if not fresh_path.exists():
        return [f"{module}: fresh results missing ({fresh_path})"]
    if not baseline_path.exists():
        print(f"{module}: no committed baseline — skipping (first run?)")
        return []

    baseline = load_results(baseline_path)
    fresh = load_results(fresh_path)
    failures: list[str] = []

    for name, base_entry in sorted(baseline.items()):
        base_wall = base_entry.get("wall_seconds")
        fresh_entry = fresh.get(name)
        if fresh_entry is None:
            print(f"{module}::{name}: missing from fresh run (renamed?)")
            continue
        fresh_wall = fresh_entry.get("wall_seconds")
        if base_wall is None or fresh_wall is None:
            continue
        ratio = fresh_wall / base_wall if base_wall > 0 else float("inf")
        verdict = "ok"
        if fresh_wall >= min_seconds and ratio > factor:
            verdict = "REGRESSION"
            failures.append(
                f"{module}::{name}: {base_wall:.3f}s -> {fresh_wall:.3f}s "
                f"({ratio:.2f}x > {factor:.2f}x)"
            )
        print(
            f"{module}::{name}: baseline {base_wall:.3f}s, "
            f"fresh {fresh_wall:.3f}s ({ratio:.2f}x) [{verdict}]"
        )

    for bounds_table, kind in (
        (METRIC_FLOORS, "floor"),
        (METRIC_CEILINGS, "ceiling"),
    ):
        for test_name, bounds in bounds_table.get(module, {}).items():
            fresh_entry = fresh.get(test_name)
            if fresh_entry is None:
                failures.append(
                    f"{module}::{test_name}: gated test missing from "
                    f"fresh run"
                )
                continue
            metrics = fresh_entry.get("metrics", {})
            for metric, limit in sorted(bounds.items()):
                value = metrics.get(metric)
                if value is None:
                    failures.append(
                        f"{module}::{test_name}: metric {metric!r} not "
                        f"recorded ({kind} {limit:g})"
                    )
                    continue
                passed = (
                    value >= limit if kind == "floor" else value <= limit
                )
                verdict = "ok" if passed else "REGRESSION"
                if not passed:
                    failures.append(
                        f"{module}::{test_name}: {metric} = {value:.2f} "
                        f"{'below' if kind == 'floor' else 'above'} "
                        f"{kind} {limit:g}"
                    )
                print(
                    f"{module}::{test_name}: {metric} = {value:.2f} "
                    f"({kind} {limit:g}) [{verdict}]"
                )

    base_rss = max(
        (e.get("peak_rss_kb", 0) for e in baseline.values()), default=0
    )
    fresh_rss = max(
        (e.get("peak_rss_kb", 0) for e in fresh.values()), default=0
    )
    if base_rss and fresh_rss:
        print(
            f"{module}: peak RSS baseline {base_rss / 1024:.0f} MiB, "
            f"fresh {fresh_rss / 1024:.0f} MiB "
            f"({fresh_rss / base_rss:.2f}x, informational)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on benchmark wall-time regressions."
    )
    parser.add_argument("baseline_dir", type=Path,
                        help="directory with the committed baseline JSONs")
    parser.add_argument("fresh_dir", type=Path,
                        help="directory with freshly generated JSONs")
    parser.add_argument("--modules", nargs="*", default=list(DEFAULT_MODULES),
                        help="module stems to gate (default: kernel, "
                             "Table-3 and ingest benches)")
    parser.add_argument("--factor", type=float,
                        default=float(os.environ.get("PERF_GATE_FACTOR",
                                                     "1.5")),
                        help="allowed slowdown factor (default 1.5, or "
                             "PERF_GATE_FACTOR)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore tests faster than this (timer noise)")
    args = parser.parse_args(argv)

    failures: list[str] = []
    for module in args.modules:
        failures.extend(
            compare_module(module, args.baseline_dir, args.fresh_dir,
                           args.factor, args.min_seconds)
        )

    if failures:
        print("\nPerformance regressions detected:")
        for msg in failures:
            print(f"  {msg}")
        return 1
    print("\nNo performance regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
