"""Benchmark: the reduced-order sweep tier (repro.rom).

ISSUE-7 headline: a ≥1000-scenario what-if sweep answered from the
rational-Krylov reduced model runs **at least 10× faster per scenario**
than the warm full-order sweep (itself the PR-5/6 fast path: compiled
plan + stacked lockstep marches), while every scenario is either

* accepted with a posterior relative error bound below the configured
  tolerance — spot-checked here against the full-order trajectory,
  which must sit inside the *absolute* bound, or
* transparently re-run on the full-order path (bit-identical results),
  with the fallback rate held under 5 %.

The full-order rate is measured on a warm subset (marching all 1000
scenarios full-order would dominate the bench for no extra
information); the reduced tier answers the whole sweep.

Recorded metrics (gated by ``check_perf_regression.py``):

* ``rom_speedup``          — full-order warm ms/scenario ÷ ROM
  ms/scenario (floor: 10),
* ``fallback_rate``        — fraction re-run full-order (ceiling: 0.05),
* ``rom_dim``              — reduced dimension ``q``,
* ``max_bound_rel`` / ``max_err_rel`` — worst posterior bound over the
  sweep and worst observed error over the parity sample.
"""

import time

import numpy as np

from repro.core import SolverOptions
from repro.linalg.lu import FACTORIZATION_CACHE
from repro.pdn import load_pattern_scenarios
from repro.plan import Session, SimulationPlan
from repro.rom import RomConfig

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-6)

#: The acceptance-criteria sweep width.
N_SCENARIOS = 1000
#: Warm full-order scenarios used to estimate the per-scenario rate.
N_FULL_SAMPLE = 16
#: Scenarios spot-checked against their full-order trajectory.
PARITY_INDICES = (0, 249, 499, 749, 999)


def test_rom_sweep_speedup(pg1t, record_metric):
    system, case = pg1t
    scenarios = load_pattern_scenarios(
        system, n=N_SCENARIOS, seed=2014, spread=0.5
    )

    # Warm full-order rate: compile once, absorb the one-off lazy costs
    # with a baseline run, then time a stacked sample sweep.
    FACTORIZATION_CACHE.clear()
    compiled_full = SimulationPlan(
        system, OPTS, t_end=case.t_end
    ).compile()
    with Session(compiled_full) as session:
        session.run()
        t0 = time.perf_counter()
        session.sweep(scenarios[:N_FULL_SAMPLE], stack="auto")
        full_wall = time.perf_counter() - t0
    full_ms = full_wall / N_FULL_SAMPLE * 1e3

    # Reduced tier: one projection at compile, then the whole sweep.
    config = RomConfig()
    t0 = time.perf_counter()
    compiled = SimulationPlan(system, OPTS, t_end=case.t_end).compile(
        rom=config
    )
    build_wall = time.perf_counter() - t0
    assert compiled.rom is not None, compiled.rom_error
    model = compiled.rom

    with Session(compiled) as session:
        t0 = time.perf_counter()
        results = session.sweep(scenarios)
        rom_wall = time.perf_counter() - t0
        accepted, fallbacks = session.rom_accepted, session.rom_fallbacks

        # Every scenario consulted the model and is accounted for.
        assert accepted + fallbacks == N_SCENARIOS
        assert all(r.rom_dim == model.dim for r in results)
        bounds = [r.rom_bound for r in results if not r.rom_fallback]
        assert all(b <= config.tol for b in bounds)

        # Full-order parity spot checks: accepted answers must sit
        # inside their absolute posterior bound; fallbacks are the
        # full-order path and must match bit-for-bit.
        max_err_rel = 0.0
        full_spot = session.sweep(
            [scenarios[i] for i in PARITY_INDICES], rom=False
        )
        for idx, r_full in zip(PARITY_INDICES, full_spot):
            r_rom = results[idx]
            if r_rom.rom_fallback:
                assert (r_rom.result.states.tobytes()
                        == r_full.result.states.tobytes())
                continue
            err = float(
                np.abs(r_rom.result.states - r_full.result.states).max()
            )
            ans = model.answer(model.input_matrix(scenarios[idx], None))
            assert err <= ans.bound_abs, (
                f"scenario {idx}: error {err:.3e} above the certified "
                f"bound {ans.bound_abs:.3e}"
            )
            scale = float(np.abs(
                r_full.result.states - r_full.result.states[0]
            ).max())
            max_err_rel = max(max_err_rel, err / scale)

    rom_ms = rom_wall / N_SCENARIOS * 1e3
    speedup = full_ms / rom_ms
    fallback_rate = fallbacks / N_SCENARIOS

    record_metric("n_scenarios", N_SCENARIOS)
    record_metric("rom_dim", model.dim)
    record_metric("rom_build_seconds", build_wall)
    record_metric("full_ms_per_scenario", full_ms)
    record_metric("rom_ms_per_scenario", rom_ms)
    record_metric("rom_speedup", speedup)
    record_metric("fallback_rate", fallback_rate)
    record_metric("max_bound_rel", max(bounds, default=0.0))
    record_metric("max_err_rel", max_err_rel)
    record_metric("rom_resident_mib", model.resident_bytes() / 2**20)

    # Acceptance criteria (mirrored by the CI gate's floor/ceiling).
    assert speedup >= 10.0, (
        f"rom speedup {speedup:.1f}x < 10x "
        f"(full {full_ms:.1f} ms/scenario, rom {rom_ms:.2f})"
    )
    assert fallback_rate <= 0.05, (
        f"fallback rate {fallback_rate:.3f} > 0.05 "
        f"({fallbacks}/{N_SCENARIOS} scenarios re-ran full-order)"
    )
