"""Benchmark: paper Table 1 — MEXP vs I-MATEX vs R-MATEX on stiff meshes.

Regenerates the full table (written to ``results/table1.txt``) and
benchmarks each method's transient loop at the medium stiffness level so
the timing relationships (R-MATEX fastest, MEXP slowest by a widening
factor) are tracked by pytest-benchmark.
"""

import numpy as np
import pytest

from repro.circuit import assemble
from repro.core import MatexSolver, SolverOptions, build_schedule
from repro.experiments.table1 import run_table1
from repro.pdn import stiff_rc_mesh

T_END, H = 3e-10, 5e-12
GRID = [i * H for i in range(61)]


@pytest.fixture(scope="module")
def medium_mesh():
    net = stiff_rc_mesh(16, 16, fast_ratio=30.0, slow_ratio=1e6, n_sources=5)
    return assemble(net)


@pytest.mark.parametrize("method", ["standard", "inverted", "rational"])
def test_method_transient_loop(benchmark, medium_mesh, method):
    """Per-method transient wall time at fixed stiffness (Table 1 core)."""
    opts = SolverOptions(method=method, gamma=H, eps_rel=0.0,
                         eps_abs=1e-10, m_max=300)
    solver = MatexSolver(medium_mesh, opts)
    schedule = build_schedule(medium_mesh, T_END, global_points=GRID)
    x0 = np.zeros(medium_mesh.dim)

    result = benchmark(lambda: solver.simulate(T_END, x0=x0, schedule=schedule))
    assert result.stats.n_steps == 60


def test_generate_full_table1(benchmark, record_table):
    """One-shot regeneration of the whole Table 1 (3 stiffness levels)."""
    def run():
        table, rows = run_table1(rows=16, cols=16, m_max=300)
        return table, rows

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("table1", table)

    by = {(r.level, r.method): r for r in rows}
    # Paper shape assertions: MEXP basis grows with stiffness and always
    # dwarfs the spectral-transform bases; speedups exceed 1.
    assert by[("high", "standard")].ma > by[("low", "standard")].ma
    for level in ("low", "medium", "high"):
        assert by[(level, "standard")].ma > 2 * by[(level, "rational")].ma
        assert by[(level, "inverted")].speedup_vs_mexp > 1.0
        assert by[(level, "rational")].speedup_vs_mexp > 1.0
