"""Benchmark (ablation): R-MATEX shift γ sensitivity (paper Sec. 3.3.2).

The paper claims the rational basis "is not very sensitive to γ, once it
is set to around the order near time steps used".  This sweep quantifies
it on pg1t and records the table to ``results/gamma_ablation.txt``.
"""

from repro.experiments.gamma_ablation import run_gamma_ablation


def test_gamma_sweep(benchmark, record_table):
    def run():
        return run_gamma_ablation(
            case="pg1t",
            gammas=[1e-13, 1e-12, 1e-11, 1e-10, 1e-9, 1e-8],
            golden_h=1e-12,
        )

    table, samples = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("gamma_ablation", table)

    by_gamma = {s.gamma: s for s in samples}
    # Within the paper's recommended band (time-step order ±1 decade)
    # accuracy and basis size are flat.
    band = [by_gamma[g] for g in (1e-11, 1e-10, 1e-9)]
    assert max(s.max_err for s in band) < 1e-3
    assert max(s.mp for s in band) <= min(s.mp for s in band) + 6
