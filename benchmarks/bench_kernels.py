"""Micro-benchmarks of the computational kernels (Sec. 3.4 constants).

Measures the primitives the paper's complexity model is built from:

* ``Tbs``   — one forward/backward substitution pair,
* the level-scheduled multi-RHS substitution kernel vs the per-column
  loop (the batched-march multiplier; gated, see
  ``check_perf_regression.py``),
* Arnoldi basis construction (m substitution pairs + orthogonalisation),
* ``TH+Te`` — one small-exponential snapshot evaluation, comparing the
  eigendecomposition fast path against plain Padé (our ablation: the
  cache is what makes ``K·(TH+Te)`` negligible at scaled sizes),
* the dense Padé ``expm`` itself vs SciPy's.
"""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.linalg import RationalKrylov, SparseLU, expm
from repro.linalg.krylov import KrylovBasis


@pytest.fixture(scope="module")
def system(pg1t):
    return pg1t[0]


def test_substitution_pair(benchmark, system):
    """Tbs: the unit cost of both TR steps and Arnoldi iterations."""
    lu = SparseLU((system.C + 1e-10 * system.G).tocsc(), label="probe")
    rhs = np.random.default_rng(0).normal(size=system.dim)
    benchmark(lambda: lu.solve(rhs))


def test_multi_rhs_substitution_batched(benchmark, system, record_metric):
    """Level-scheduled lockstep batch vs the per-column scalar loop.

    Both paths produce bit-identical blocks (asserted — the invariant
    the batched march rests on); the level kernel must keep a healthy
    multiple over the column loop at march-like widths or the restored
    3x batched-march gate erodes from below.
    """
    import time

    from repro.linalg.triangular import set_kernel_mode

    lu = SparseLU((system.C + 1e-10 * system.G).tocsc(), label="probe")
    block = np.random.default_rng(3).normal(size=(system.dim, 128))
    lu.prime_kernel(wide=True)  # pay export + schedule outside timing

    set_kernel_mode("column")
    column_out = lu.solve_many(block)
    set_kernel_mode(None)
    level_out = lu.solve_many(block)
    assert level_out.tobytes() == column_out.tobytes()

    column_walls, level_walls = [], []
    for _ in range(7):  # interleaved best-of, like the march gate
        set_kernel_mode("column")
        t0 = time.perf_counter()
        lu.solve_many(block)
        column_walls.append(time.perf_counter() - t0)
        set_kernel_mode(None)
        t0 = time.perf_counter()
        lu.solve_many(block)
        level_walls.append(time.perf_counter() - t0)
    kernel_speedup = min(column_walls) / min(level_walls)

    record_metric("column_wall_seconds", min(column_walls))
    record_metric("level_wall_seconds", min(level_walls))
    record_metric("kernel_speedup", kernel_speedup)
    assert kernel_speedup >= 1.5, (
        f"level kernel must be >= 1.5x the column loop at width 128, "
        f"got {kernel_speedup:.2f}x"
    )
    benchmark(lambda: lu.solve_many(block))


def test_arnoldi_basis_build(benchmark, system):
    rng = np.random.default_rng(0)
    op = RationalKrylov(system.C, system.G, gamma=1e-10)
    v = rng.normal(size=system.dim)
    benchmark(lambda: op.build_basis(v, 1e-11, tol=1e-9, m_max=30))


def _make_basis(system, m=10):
    rng = np.random.default_rng(1)
    q, _ = np.linalg.qr(rng.normal(size=(system.dim, m)))
    hm = np.diag(-np.logspace(9, 12, m)) + 0.1 * rng.normal(size=(m, m))
    return KrylovBasis(Vm=q, Hm=hm, beta=1.0, h_built=1e-11, m=m,
                       error_estimate=0.0, method="rational")


def test_snapshot_eval_with_eig_cache(benchmark, system):
    """TH+Te on the fast path (eigendecomposition cached)."""
    basis = _make_basis(system)
    basis.evaluate(1e-11)  # warm the cache
    benchmark(lambda: basis.evaluate(3e-11))


def test_snapshot_eval_pade_only(benchmark, system):
    """Ablation: the same evaluation with the cache disabled."""
    basis = _make_basis(system)
    object.__setattr__(basis, "_eig", (False, None))  # force Padé path
    benchmark(lambda: basis.evaluate(3e-11))


@pytest.mark.parametrize("m", [8, 32])
def test_dense_expm_pade(benchmark, m):
    rng = np.random.default_rng(2)
    a = rng.normal(size=(m, m))
    ours = benchmark(lambda: expm(a))
    assert np.allclose(ours, sla.expm(a), rtol=1e-10, atol=1e-11)
