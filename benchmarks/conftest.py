"""Shared benchmark fixtures and result recording.

Every benchmark regenerates (part of) a paper table or figure; besides
the pytest-benchmark timings, the rendered paper-style tables are written
to ``benchmarks/results/*.txt`` so EXPERIMENTS.md can reference them.

Each benchmark module additionally emits a machine-readable
``benchmarks/results/<module>.json`` — one entry per test with its wall
time plus any metrics the test chose to record via the
``record_metric`` fixture — so the performance trajectory can be
tracked across PRs (and uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None


def _peak_rss_kb() -> int | None:
    """Process peak RSS in KiB; None if unknown.

    ``ru_maxrss`` is KiB on Linux but **bytes** on macOS — normalise so
    baselines regenerated on either platform stay comparable.
    """
    if resource is None:
        return None
    rss = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":
        rss //= 1024
    return rss

RESULTS_DIR = Path(__file__).parent / "results"

#: module stem -> {test name -> {"wall_seconds": ..., "metrics": {...}}}
_JSON_RESULTS: dict[str, dict[str, dict]] = {}


def _entry(request) -> dict:
    module = Path(str(request.fspath)).stem
    tests = _JSON_RESULTS.setdefault(module, {})
    return tests.setdefault(request.node.name, {"metrics": {}})


@pytest.fixture(autouse=True)
def _record_wall_time(request):
    """Time every benchmark test (and its peak RSS) into the JSON record.

    ``peak_rss_kb`` is the process high-water mark at test end — a
    monotone quantity, so per-test values tell which test first pushed
    memory to a new peak; the perf-regression gate tracks the module
    maximum.
    """
    t0 = time.perf_counter()
    yield
    entry = _entry(request)
    entry["wall_seconds"] = round(time.perf_counter() - t0, 6)
    rss = _peak_rss_kb()
    if rss is not None:
        entry["peak_rss_kb"] = rss


@pytest.fixture
def record_metric(request):
    """Attach a named metric to the current test's JSON record.

    >>> record_metric("cache_hits", dres.factor_cache_hits)
    """

    def _record(name: str, value) -> None:
        _entry(request)["metrics"][name] = value

    return _record


def pytest_sessionfinish(session, exitstatus):
    """Write one JSON file per benchmark module that ran."""
    if not _JSON_RESULTS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    for module, tests in sorted(_JSON_RESULTS.items()):
        payload = {
            "module": module,
            "tests": [
                {"name": name, **entry}
                for name, entry in sorted(tests.items())
            ],
        }
        path = RESULTS_DIR / f"{module}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.fixture(scope="session")
def record_table():
    """Write a rendered table to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, table) -> None:
        text = table.render() if hasattr(table, "render") else str(table)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _record


@pytest.fixture(scope="session")
def pg1t():
    from repro.pdn import build_case

    return build_case("pg1t")


@pytest.fixture(scope="session")
def pg4t():
    from repro.pdn import build_case

    return build_case("pg4t")
