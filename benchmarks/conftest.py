"""Shared benchmark fixtures and result recording.

Every benchmark regenerates (part of) a paper table or figure; besides
the pytest-benchmark timings, the rendered paper-style tables are written
to ``benchmarks/results/*.txt`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_table():
    """Write a rendered table to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, table) -> None:
        text = table.render() if hasattr(table, "render") else str(table)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _record


@pytest.fixture(scope="session")
def pg1t():
    from repro.pdn import build_case

    return build_case("pg1t")


@pytest.fixture(scope="session")
def pg4t():
    from repro.pdn import build_case

    return build_case("pg4t")
