"""Benchmark: paper Table 3 — distributed MATEX vs fixed-step TR (10ps).

The headline experiment.  Benchmarks the TR baseline's 1000-step loop
and the distributed MATEX run on two cases, then regenerates the Table 3
rows (all six suite cases take minutes; the recorded table uses pg1t and
pg4t by default — run ``python -m repro.experiments.runner table3`` for
the full six).

The distributed runs also demonstrate the :data:`FACTORIZATION_CACHE`
amortisation: every multi-node run reuses at least one factorisation
(the workers' ``G`` is served from the scheduler's DC analysis — all
sub-tasks share one MNA pencil, paper Sec. 3.4), and a warm re-run of
the same pencil re-factors nothing at all.
"""

from repro.baselines import simulate_trapezoidal
from repro.core import SolverOptions
from repro.dist import MatexScheduler
from repro.experiments.table3 import run_table3
from repro.linalg.lu import FACTORIZATION_CACHE

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-6)


def test_tr_baseline_1000_steps(benchmark, pg1t, record_metric):
    system, case = pg1t

    def run():
        return simulate_trapezoidal(system, case.h_tr, case.t_end,
                                    record_times=[case.t_end])

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.stats.n_steps == 1000
    record_metric("n_steps", result.stats.n_steps)
    record_metric("transient_seconds", result.stats.transient_seconds)


def test_distributed_matex(benchmark, pg1t, record_metric):
    system, case = pg1t
    scheduler = MatexScheduler(system, OPTS, decomposition="bump")

    def run():
        return scheduler.run(case.t_end)

    dres = benchmark.pedantic(run, rounds=2, iterations=1)
    assert dres.n_nodes == 100
    # Sec. 3.4 amortisation: every multi-node run reuses >= 1 LU — the
    # workers' G factorisation is served from the scheduler's DC entry.
    assert dres.factor_cache_hits >= 1
    record_metric("n_nodes", dres.n_nodes)
    record_metric("factor_cache_hits", dres.factor_cache_hits)
    record_metric("factor_cache_misses", dres.factor_cache_misses)
    record_metric("tr_matex_seconds", dres.tr_matex)
    record_metric("tr_total_seconds", dres.tr_total)


def test_block_batched_march(pg1t, record_metric):
    """The block-batched fast path vs the per-node emulated run.

    One lockstep march advances all 100 node tasks together; the
    superposed trajectory must be **bit-for-bit** the per-node one
    (Table 3 numbers unchanged) while the wall time drops at least 2×.
    The per-node run's tr_matex/tr_total model numbers are recorded by
    ``test_distributed_matex``; this test records the measured walls.
    """
    import time

    system, case = pg1t
    pernode = MatexScheduler(system, OPTS, decomposition="bump")
    batched = MatexScheduler(system, OPTS, decomposition="bump",
                             batch="auto")

    ref = pernode.run(case.t_end)   # warm caches for both paths
    blk = batched.run(case.t_end)
    assert blk.n_nodes == ref.n_nodes == 100
    assert blk.result.states.tobytes() == ref.result.states.tobytes()
    assert blk.result.times.tobytes() == ref.result.times.tobytes()
    assert (blk.total_substitution_pairs
            == ref.total_substitution_pairs)

    # Interleaved best-of-5: alternating the two paths keeps slow
    # drifts (thermal, co-tenancy) from biasing either side's minimum.
    pernode_walls, batched_walls = [], []
    for _ in range(5):
        t0 = time.perf_counter()
        pernode.run(case.t_end)
        pernode_walls.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        batched.run(case.t_end)
        batched_walls.append(time.perf_counter() - t0)
    pernode_wall = min(pernode_walls)
    batched_wall = min(batched_walls)
    speedup = pernode_wall / batched_wall

    record_metric("pernode_wall_seconds", pernode_wall)
    record_metric("batched_wall_seconds", batched_wall)
    record_metric("batched_speedup", speedup)
    # The 3x gate was relaxed to 2x when solve_many fell back to a
    # per-column loop (raw multi-RHS SuperLU is not per-column
    # deterministic — supernode BLAS accumulation depends on the RHS
    # count).  The level-scheduled kernel of repro.linalg.triangular
    # substitutes all columns in lockstep with the scalar sweep's exact
    # accumulation order, so the march is bit-identical to the per-node
    # path *and* the original headroom is back: the gate is restored.
    assert speedup >= 3.0, (
        f"block-batched march must be >= 3x faster than the per-node "
        f"emulated run, got {speedup:.2f}x "
        f"({pernode_wall:.3f}s vs {batched_wall:.3f}s)"
    )


def test_factorization_cache_warm_run(pg1t, record_metric):
    """Cold vs warm distributed run on the same pencil.

    The second run re-factors nothing: the DC ``G`` and the new worker's
    ``G`` / ``C + γG`` all hit the process-wide cache, so its serial
    part collapses to substitutions only.
    """
    system, case = pg1t
    FACTORIZATION_CACHE.clear()
    scheduler = MatexScheduler(system, OPTS, decomposition="bump")
    cold = scheduler.run(case.t_end)
    warm = scheduler.run(case.t_end)  # fresh SerialExecutor + NodeWorker

    assert cold.factor_cache_misses >= 1
    assert warm.factor_cache_hits >= cold.factor_cache_hits
    assert warm.factor_cache_misses == 0  # nothing re-factored
    serial_cold = cold.dc_seconds + cold.factor_seconds
    serial_warm = warm.dc_seconds + warm.factor_seconds
    record_metric("cold_cache_misses", cold.factor_cache_misses)
    record_metric("warm_cache_hits", warm.factor_cache_hits)
    record_metric("cold_serial_seconds", serial_cold)
    record_metric("warm_serial_seconds", serial_warm)
    if serial_warm > 0.0:
        record_metric("serial_part_speedup", serial_cold / serial_warm)


def test_generate_table3(benchmark, record_table, record_metric):
    def run():
        return run_table3(cases=["pg1t", "pg4t"], golden_h=1e-12)

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("table3", table)
    for row in rows:
        # Paper shape: around an order of magnitude on the transient
        # part, smaller on the total, errors at the 1e-4 V scale.
        assert row.spdp4 > 3.0
        assert row.spdp5 > 1.0
        assert row.max_err < 1e-3
        record_metric(f"{row.case}_spdp4", row.spdp4)
        record_metric(f"{row.case}_spdp5", row.spdp5)
        record_metric(f"{row.case}_max_err", row.max_err)
    pg4t_row = next(r for r in rows if r.case == "pg4t")
    pg1t_row = next(r for r in rows if r.case == "pg1t")
    assert pg4t_row.spdp4 > pg1t_row.spdp4  # few-GTS case wins biggest
