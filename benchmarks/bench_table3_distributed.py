"""Benchmark: paper Table 3 — distributed MATEX vs fixed-step TR (10ps).

The headline experiment.  Benchmarks the TR baseline's 1000-step loop
and the distributed MATEX run on two cases, then regenerates the Table 3
rows (all six suite cases take minutes; the recorded table uses pg1t and
pg4t by default — run ``python -m repro.experiments.runner table3`` for
the full six).
"""

from repro.baselines import simulate_trapezoidal
from repro.core import SolverOptions
from repro.dist import MatexScheduler
from repro.experiments.table3 import run_table3

OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-6)


def test_tr_baseline_1000_steps(benchmark, pg1t):
    system, case = pg1t

    def run():
        return simulate_trapezoidal(system, case.h_tr, case.t_end,
                                    record_times=[case.t_end])

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.stats.n_steps == 1000


def test_distributed_matex(benchmark, pg1t):
    system, case = pg1t
    scheduler = MatexScheduler(system, OPTS, decomposition="bump")

    def run():
        return scheduler.run(case.t_end)

    dres = benchmark.pedantic(run, rounds=2, iterations=1)
    assert dres.n_nodes == 100


def test_generate_table3(benchmark, record_table):
    def run():
        return run_table3(cases=["pg1t", "pg4t"], golden_h=1e-12)

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("table3", table)
    for row in rows:
        # Paper shape: around an order of magnitude on the transient
        # part, smaller on the total, errors at the 1e-4 V scale.
        assert row.spdp4 > 3.0
        assert row.spdp5 > 1.0
        assert row.max_err < 1e-3
    pg4t_row = next(r for r in rows if r.case == "pg4t")
    pg1t_row = next(r for r in rows if r.case == "pg1t")
    assert pg4t_row.spdp4 > pg1t_row.spdp4  # few-GTS case wins biggest
