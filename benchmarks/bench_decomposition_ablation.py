"""Benchmark (ablation): decomposition strategies on periodic workloads.

Compares the three decompositions on a clock-driven grid (where the
difference matters most): ``source`` (one node per source), ``bump``
(group by shape — periodic sources keep all repetitions), and
``bump-split`` (the paper's aggressive Fig. 3 variant, one bump per
unit).  Records per-node LTS counts, substitution pairs and transient
times to ``results/decomposition_ablation.txt``.
"""

import numpy as np
import pytest

from repro.analysis import Table
from repro.circuit import Pulse, assemble
from repro.core import SolverOptions
from repro.dist import MatexScheduler
from repro.pdn import PdnConfig, generate_power_grid

T_END = 2e-9
OPTS = SolverOptions(method="rational", gamma=1e-10, eps_rel=1e-7)


@pytest.fixture(scope="module")
def clocked_grid():
    net = generate_power_grid(PdnConfig(rows=14, cols=14, n_pads=4, seed=21))
    rng = np.random.default_rng(21)
    nodes = [n for n in net.node_names() if not n.startswith(("pad", "s"))]
    for k in range(48):
        phase = (k % 4) * 1.2e-10
        net.add_current_source(
            f"Iclk{k}", nodes[int(rng.integers(len(nodes)))], "0",
            Pulse(0.0, float(rng.uniform(2e-4, 2e-3)),
                  t_delay=4e-11 + phase, t_rise=1e-11,
                  t_width=5e-11, t_fall=1e-11, t_period=5e-10),
        )
    return assemble(net)


@pytest.mark.parametrize("decomposition", ["source", "bump", "bump-split"])
def test_decomposition_strategy(benchmark, clocked_grid, decomposition):
    scheduler = MatexScheduler(clocked_grid, OPTS,
                               decomposition=decomposition)
    dres = benchmark.pedantic(
        lambda: scheduler.run(T_END), rounds=2, iterations=1
    )
    assert dres.n_nodes >= 1


def test_decomposition_ablation_table(benchmark, clocked_grid, record_table):
    def run():
        table = Table(
            ["strategy", "nodes", "max LTS/node", "max pairs/node",
             "trmatex (ms)"],
            title="Decomposition ablation (periodic clock workload)",
        )
        rows = {}
        baseline = None
        for decomposition in ["source", "bump", "bump-split"]:
            dres = MatexScheduler(
                clocked_grid, OPTS, decomposition=decomposition
            ).run(T_END)
            max_lts = max(s.n_krylov_bases for s in dres.node_stats)
            table.add_row([
                decomposition, dres.n_nodes, max_lts,
                dres.max_node_substitution_pairs,
                f"{dres.tr_matex * 1e3:.1f}",
            ])
            rows[decomposition] = (dres, max_lts)
            if baseline is None:
                baseline = dres.result.states
            else:
                assert np.max(np.abs(dres.result.states - baseline)) < 1e-6
        return table, rows

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("decomposition_ablation", table)

    # The split decomposition must strictly reduce per-node Krylov work
    # on periodic sources (Fig. 3's entire point).
    assert rows["bump-split"][1] < rows["bump"][1]
    assert (rows["bump-split"][0].max_node_substitution_pairs
            < rows["bump"][0].max_node_substitution_pairs)
