"""Benchmark: paper Table 2 — adaptive TR vs single-node I-/R-MATEX.

Benchmarks the three adaptive strategies on two suite cases (pg1t and
the few-transition pg4t where the paper reports maximum speedups), and
regenerates the Table 2 rows into ``results/table2.txt``.
"""

import pytest

from repro.baselines import simulate_adaptive_trapezoidal
from repro.core import MatexSolver, SolverOptions
from repro.experiments.table2 import run_table2


@pytest.mark.parametrize("method", ["inverted", "rational"])
def test_matex_single_node(benchmark, pg4t, method):
    system, case = pg4t
    opts = SolverOptions(method=method, gamma=1e-10, eps_rel=1e-6)

    def run():
        return MatexSolver(system, opts).simulate(case.t_end)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.stats.n_krylov_bases > 0


def test_adaptive_tr(benchmark, pg4t):
    system, case = pg4t

    def run():
        return simulate_adaptive_trapezoidal(
            system, case.t_end, tol=1e-6, h_init=case.t_end / 1000.0
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.stats.n_krylov_bases >= 2  # it had to re-factorise


def test_generate_table2(benchmark, record_table):
    def run():
        return run_table2(cases=["pg1t", "pg4t"])

    table, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("table2", table)
    pg4t_row = next(r for r in rows if r.case == "pg4t")
    # The paper's headline: on the few-GTS case both MATEX flavours beat
    # the traditional adaptive method.
    assert pg4t_row.spdp1 > 1.0
    assert pg4t_row.spdp2 > 1.0
